"""Instances and databases, on an interned-id columnar fact core.

An :class:`Instance` is a set of facts (ground atoms over constants and
labelled nulls).  A *database* is an instance without nulls.  Instances
are mutable (the chase grows them) but expose a frozen snapshot for
hashing and comparison.

Internally an instance no longer stores :class:`~repro.model.atoms.Atom`
objects at all.  Every term and predicate is interned to a dense int in
a per-instance :class:`~repro.model.symbols.SymbolTable`, and each
relation is an append-only list of int-tuple *rows*, indexed two ways:

* by predicate id, giving each relation's rows in insertion order; and
* by ``(pred_id, position, term_id)``, the term-level hash indexes the
  join engine (:mod:`repro.model.joinplan`) probes with the ids already
  bound by outer join levels — int hashing and int equality instead of
  object ``__hash__``/``__eq__`` dispatch.

The physical side — symbol table, fact log, row lists, indexes, the
planner's column statistics — lives in a pluggable
:class:`~repro.storage.base.FactStore` (the ``store`` property).  The
default in-memory backend is byte-identical to the pre-storage-layer
core; the durable backend (:mod:`repro.storage.durable`) hydrates the
same structures lazily from append-only segment files, so a saved
instance reopens in O(symbols + facts) and pays row decoding only for
the predicates actually touched.  Instances built on either backend
are indistinguishable to every consumer: same ids, same rows, same
iteration order, same planner statistics.

Atoms are materialized lazily, only at API boundaries (``facts()``,
iteration, ``facts_with_predicate``, provenance, printing): the fact
log keeps one slot per row, filled with the original object on the
object-level ``add()`` path and decoded on demand for rows created by
the engines' int-level ``add_row()`` path.  Materialization never
changes ids, rows, or iteration order, so it is invisible to
determinism (the lazy-atom argument is spelled out in PERF.md).

All indexes are maintained incrementally by ``add()``/``add_row()``;
facts are never removed, so index rows are append-only and iterating a
length-bounded prefix of a row list is a zero-copy snapshot.  The
active domain is likewise maintained incrementally (a satellite of the
interned-core PR): ``active_domain()`` no longer rescans all facts.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.base import FactStore

from .atoms import Atom, Predicate
from .schema import Schema
from .symbols import SymbolTable
from .terms import Constant, Null, Term

Row = Tuple[int, ...]


class Instance:
    """A set of facts, indexed by predicate and by term occurrence.

    The iteration order is insertion order (deterministic chases need a
    deterministic fact order).
    """

    __slots__ = (
        "_store",
        "_atoms",
        "order_policy",
        "kernel",
        "_domain_cache",
        "_constants_cache",
        "_nulls_cache",
        "_snapshots",
        "_steps",
        "_plans",
        "_templates",
    )

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        symbols: Optional[SymbolTable] = None,
        store: Optional[FactStore] = None,
    ):
        # Function-level import: storage.base imports model submodules
        # for its structures, so a module-level import here would be
        # circular whichever package loads first.
        from ..storage.base import MemoryFactStore

        if store is not None:
            if symbols is not None:
                raise ValueError("pass symbols or store, not both")
            self._store = store
        else:
            self._store = MemoryFactStore(symbols)
        # Sparse ordinal -> Atom store: filled with the caller's object
        # on object-level adds, decoded on demand everywhere else (most
        # engine-created facts never materialize at all).
        self._atoms: Dict[int, Atom] = {}
        # Join-order policy consulted by the chase engines' discovery
        # and head-probe plans ("heuristic" preserves the canonical
        # fair order; "cost" plans from the store's statistics).
        self.order_policy: str = "heuristic"
        # Execution-kernel policy consulted by the chase engines'
        # trigger discovery ("tuple" is the original one-binding-at-a-
        # time executor; "vector"/"auto" let fat rounds run the batch
        # kernels of repro.query.kernels — results are byte-identical
        # either way, the batch join is order-exact).
        self.kernel: str = "tuple"
        # Size-validated decode caches over the store's domain.
        self._domain_cache: Optional[FrozenSet[Term]] = None
        self._constants_cache: Optional[Tuple[int, FrozenSet[Constant]]] = None
        self._nulls_cache: Optional[Tuple[int, FrozenSet[Null]]] = None
        # Cached facts_with_predicate() tuples, invalidated by the
        # store's per-relation row counts (backend-agnostic).
        self._snapshots: Dict[int, Tuple[Atom, ...]] = {}
        # Join-engine resolution caches (managed by repro.model.joinplan
        # and repro.chase.triggers; they die with the instance, unlike
        # the old global caches).
        self._steps: Dict = {}
        self._plans: Dict = {}
        self._templates: Dict = {}
        if (
            symbols is None
            and store is None
            and type(self) is Instance
            and isinstance(facts, Instance)
            and type(facts) in (Instance, Database)
        ):
            # Columnar fast path: duplicate the int core wholesale
            # (same ids, same rows, same order) instead of re-encoding
            # every Atom — the chase engines copy their input database
            # this way.  Subclasses fall through to per-fact adds so
            # their add() checks still run.
            self._store = facts._store.clone()
            self._atoms = dict(facts._atoms)
            self.order_policy = facts.order_policy
            self.kernel = facts.kernel
            return
        for fact in facts:
            self.add(fact)

    @property
    def store(self) -> FactStore:
        """The physical backend holding this instance's rows (the
        :class:`~repro.storage.base.FactStore` API is the only
        sanctioned access to raw storage structures)."""
        return self._store

    # -- interning ---------------------------------------------------------

    def pred_id(self, predicate: Predicate) -> int:
        """The (interning) dense id of ``predicate``."""
        return self._store.pred_id(predicate)

    def pred_id_get(self, predicate: Predicate) -> Optional[int]:
        """The id of ``predicate`` if seen before, else ``None``."""
        return self._store.pred_id_get(predicate)

    def predicate_of(self, pid: int) -> Predicate:
        """Decode a predicate id."""
        return self._store.pred_objs[pid]

    def prime_predicate(self, predicate: Predicate, pid: int) -> None:
        """Install a parent-assigned predicate id (worker mirrors)."""
        self._store.prime_predicate(predicate, pid)

    def term_id(self, term: Term) -> int:
        """The (interning) dense id of ``term``."""
        return self._store.symbols.intern(term)

    def term_id_get(self, term: Term) -> Optional[int]:
        """The id of ``term`` if interned, else ``None``."""
        return self._store.symbols.get(term)

    def term_of(self, tid: int) -> Term:
        """Decode a term id."""
        return self._store.symbols.obj(tid)

    @property
    def symbols(self) -> SymbolTable:
        """The instance's symbol table (terms only; predicates are kept
        in a separate id space)."""
        return self._store.symbols

    def prepare_rules(self, rules: Iterable) -> None:
        """Pre-intern every predicate and constant of ``rules`` in a
        fixed order (rule-major, body before head, position order).

        Engines call this once, serially, before any batched round so
        that threaded discovery only ever *reads* the symbol table —
        id assignment order can then never depend on thread timing.
        (On a reopened durable store this also hydrates every relation
        the rules mention, before any round runs.)
        """
        from .terms import Variable

        store = self._store
        intern = store.symbols.intern
        for rule in rules:
            for atom in rule.body + rule.head:
                store.pred_id(atom.predicate)
                for term in atom.terms:
                    if not isinstance(term, Variable):
                        intern(term)

    # -- mutation ----------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Insert ``fact``; return True iff it was new.

        Raises ``ValueError`` for non-ground atoms — instances contain
        facts only.
        """
        if not fact.is_ground():
            raise ValueError(f"instances hold ground atoms only, got {fact}")
        store = self._store
        pid = store.pred_id(fact.predicate)
        intern = store.symbols.intern
        row = tuple(intern(t) for t in fact.terms)
        ordinal = store.add_row(pid, row)
        if ordinal is None:
            return False
        # Keep the caller's object so facts() hands back identical
        # Atoms for object-level insertions (and skips a decode).
        self._atoms[ordinal] = fact
        return True

    def add_row(self, pid: int, row: Row) -> Optional[int]:
        """Int-level insert: add ``row`` under predicate id ``pid``.

        Returns the new fact's ordinal, or ``None`` if it was already
        present.  The Atom is materialized lazily.  No groundness check
        — ids always denote ground terms.
        """
        return self._store.add_row(pid, row)

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Insert many facts; return how many were new."""
        return sum(1 for f in facts if self.add(f))

    # -- materialization ---------------------------------------------------

    def atom_at(self, ordinal: int) -> Atom:
        """The fact at log position ``ordinal`` (materialized lazily)."""
        atom = self._atoms.get(ordinal)
        if atom is None:
            store = self._store
            pid, row = store.row_at(ordinal)
            obj = store.symbols.obj
            atom = Atom(store.pred_objs[pid], [obj(t) for t in row])
            self._atoms[ordinal] = atom
        return atom

    def row_at(self, ordinal: int) -> Tuple[int, Row]:
        """``(pred_id, row)`` at log position ``ordinal``."""
        return self._store.row_at(ordinal)

    def ordinal_of(self, fact: Atom) -> Optional[int]:
        """The log position of ``fact``, or ``None`` if absent."""
        store = self._store
        pid = store.pred_id_get(fact.predicate)
        if pid is None:
            return None
        get = store.symbols.get
        row: List[int] = []
        for term in fact.terms:
            tid = get(term)
            if tid is None:
                return None
            row.append(tid)
        return store.member_rows(pid).get(tuple(row))

    # -- queries ------------------------------------------------------------

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Atom):
            return False
        return self.ordinal_of(fact) is not None

    def __iter__(self) -> Iterator[Atom]:
        for ordinal in range(self._store.size()):
            yield self.atom_at(ordinal)

    def __len__(self) -> int:
        return self._store.size()

    def __eq__(self, other: object) -> bool:
        # Compares fact *sets* through the public surface, so instances
        # on different backends (or mid-hydration) compare correctly.
        if not isinstance(other, Instance):
            return NotImplemented
        return set(self) == set(other)

    def __repr__(self) -> str:
        if len(self) <= 8:
            inner = ", ".join(str(f) for f in self)
            return f"Instance({{{inner}}})"
        return f"Instance(<{len(self)} facts>)"

    def __reduce__(self):
        # Ship the fact tuple only; the receiving interpreter re-interns
        # every symbol and rebuilds the indexes (whose dict keys would
        # otherwise carry hashes from the sending interpreter).  Also
        # covers Database (``self.__class__`` re-runs its null check)
        # and durable-backed instances (facts() hydrates; the copy is
        # rebuilt on the default in-memory backend).
        return (self.__class__, (self.facts(),))

    def facts(self) -> Tuple[Atom, ...]:
        """All facts in insertion order."""
        atom_at = self.atom_at
        return tuple(atom_at(o) for o in range(self._store.size()))

    def facts_with_predicate(self, predicate: Predicate) -> Tuple[Atom, ...]:
        """The facts of one relation, in insertion order.

        The returned tuple is cached and only rebuilt after the
        relation has grown — validity is checked against the store's
        row count, which both backends answer without hydrating, so
        callers may hold on to it as an immutable snapshot.
        """
        store = self._store
        pid = store.pred_id_get(predicate)
        if pid is None:
            return ()
        count = store.count_rows(pid)
        if not count:
            return ()
        cached = self._snapshots.get(pid)
        if cached is None or len(cached) != count:
            atom_at = self.atom_at
            # Membership values are ordinals in insertion order.
            cached = tuple(
                atom_at(o) for o in store.member_rows(pid).values()
            )
            self._snapshots[pid] = cached
        return cached

    def count_with_predicate(self, predicate: Predicate) -> int:
        """How many facts one relation holds (no allocation — and no
        hydration on a reopened durable store)."""
        pid = self._store.pred_id_get(predicate)
        if pid is None:
            return 0
        return self._store.count_rows(pid)

    def facts_matching(
        self, predicate: Predicate, bindings: Mapping[int, Term]
    ) -> List[Atom]:
        """The facts of ``predicate`` carrying ``bindings[i]`` at every
        position ``i``, in insertion order.

        Probes the most selective term-level index among the bound
        positions and verifies only the *non-probed* positions; with
        every position bound this collapses to a single membership
        probe (mirroring the join engine's fully-bound fast path), and
        with empty ``bindings`` it is the whole relation.  Returns a
        fresh list the caller may keep.
        """
        store = self._store
        pid = store.pred_id_get(predicate)
        if pid is None:
            return []
        atom_at = self.atom_at
        if not bindings:
            return [atom_at(o) for o in store.member_rows(pid).values()]
        get = store.symbols.get
        encoded: List[Tuple[int, int]] = []
        for position, term in bindings.items():
            if not 0 <= position < predicate.arity:
                # No fact has an out-of-range position bound.
                return []
            tid = get(term)
            if tid is None:
                return []
            encoded.append((position, tid))
        member = store.member_rows(pid)
        if len(encoded) == predicate.arity:
            # Fully bound: the row is determined — one O(1) probe.
            probe = [0] * predicate.arity
            for position, tid in encoded:
                probe[position] = tid
            ordinal = member.get(tuple(probe))
            return [] if ordinal is None else [atom_at(ordinal)]
        best: Optional[List[Row]] = None
        best_position = -1
        for position, tid in encoded:
            rows = store.probe_rows(pid, position, tid)
            if not rows:
                return []
            if best is None or len(rows) < len(best):
                best = rows
                best_position = position
        assert best is not None
        rest = [(p, t) for p, t in encoded if p != best_position]
        if rest:
            matched = [
                row
                for row in best
                if all(row[p] == t for p, t in rest)
            ]
        else:
            matched = list(best)
        return [atom_at(member[row]) for row in matched]

    # -- join-engine accessors (zero-copy, via the store) ------------------

    def rows_of(self, pid: int) -> List[Row]:
        """Live insertion-ordered row list of one relation (do not
        mutate; may be empty and unregistered)."""
        return self._store.rows_of(pid)

    def probe_rows(self, pid: int, position: int, tid: int) -> List[Row]:
        """Live row list of the ``(pred_id, position, term_id)`` index
        (do not mutate)."""
        return self._store.probe_rows(pid, position, tid)

    def member_rows(self, pid: int) -> Dict[Row, int]:
        """Live ``row -> ordinal`` membership dict of one relation
        (do not mutate)."""
        return self._store.member_rows(pid)

    def distinct_at(self, pid: int, position: int) -> int:
        """How many distinct term ids occur at ``position`` of relation
        ``pid`` (maintained incrementally — the planner's per-column
        cardinality statistic; 0 for empty/unknown columns).  On a
        reopened store the counters come from the manifest, so the
        cost planner orders joins identically across backends."""
        return self._store.distinct_at(pid, position)

    def ordinals_of(self, pid: int) -> List[int]:
        """Insertion-ordered fact ordinals of one relation (a fresh
        list; membership values are ordinals in insertion order)."""
        return self._store.ordinals_of(pid)

    def predicates(self) -> FrozenSet[Predicate]:
        """The predicates with at least one fact."""
        store = self._store
        return frozenset(
            store.pred_objs[pid] for pid in store.nonempty_pids()
        )

    def schema(self) -> Schema:
        """The schema induced by the instance's facts."""
        return Schema(self.predicates())

    def active_domain(self) -> FrozenSet[Term]:
        """All terms occurring in some fact.

        Maintained incrementally by ``add_row`` — no rescan; the
        decoded frozenset is cached until the domain grows.
        """
        store = self._store
        cached = self._domain_cache
        if cached is not None and len(cached) == len(store.domain_ids):
            return cached
        obj = store.symbols.obj
        cached = frozenset(obj(tid) for tid in store.domain_ids)
        self._domain_cache = cached
        return cached

    def constants(self) -> FrozenSet[Constant]:
        """All constants occurring in some fact."""
        size = len(self._store.domain_ids)
        cached = self._constants_cache
        if cached is not None and cached[0] == size:
            return cached[1]
        out = frozenset(
            t for t in self.active_domain() if isinstance(t, Constant)
        )
        self._constants_cache = (size, out)
        return out

    def nulls(self) -> FrozenSet[Null]:
        """All labelled nulls occurring in some fact."""
        size = len(self._store.domain_ids)
        cached = self._nulls_cache
        if cached is not None and cached[0] == size:
            return cached[1]
        out = frozenset(
            t for t in self.active_domain() if isinstance(t, Null)
        )
        self._nulls_cache = (size, out)
        return out

    def is_database(self) -> bool:
        """True iff the instance is null-free."""
        return not self.nulls()

    def copy(self) -> "Instance":
        """An independent copy sharing no mutable state (cloned through
        the store API — works identically on either backend, always
        yielding an in-memory copy)."""
        return Instance(self)

    def save(self, path: str, overwrite: bool = False):
        """Persist this instance as a durable store directory at
        ``path`` (see :mod:`repro.storage.durable`); returns the
        :class:`~repro.storage.durable.StoreWriter` so callers may
        keep appending.  Reopen with
        :func:`repro.storage.open_instance`."""
        from ..storage.durable import save_store

        return save_store(self._store, path, overwrite=overwrite)

    def frozen(self) -> FrozenSet[Atom]:
        """A hashable snapshot of the fact set."""
        return frozenset(self)

    def snapshot(self, watermark: Optional[int] = None) -> "SnapshotInstance":
        """A consistent read-only view of this instance at a row-count
        watermark (default: the current size).

        Rows are append-only, so the view is zero-copy: it shares this
        instance's storage and bounds every read at the watermark.
        Create snapshots only while no writer is appending (e.g.
        between chase rounds / extension legs); once created, a
        snapshot may be queried from any number of threads while this
        instance keeps growing — that is the query server's
        mid-extension read consistency (see :mod:`repro.serve`).

        Snapshots reject mutation, and queries against them never
        intern new symbols into the shared tables (unseen constants
        resolve to snapshot-local ids matching nothing), so concurrent
        readers cannot perturb the writer's deterministic id
        assignment.
        """
        return SnapshotInstance(self, watermark)


class Database(Instance):
    """An instance that rejects nulls — the chase's input."""

    __slots__ = ()

    def add(self, fact: Atom) -> bool:
        if fact.nulls():
            raise ValueError(f"databases are null-free, got {fact}")
        return super().add(fact)

    def copy(self) -> "Database":
        return Database(self.facts())


class SnapshotInstance(Instance):
    """A read-only view of another instance at a row-count watermark.

    Shares the base instance's storage and decoded-atom cache
    zero-copy (rows are append-only, so everything below the watermark
    is immutable) but keeps **its own** plan caches: a snapshot's size
    never changes, so resolved query plans stay valid for its whole
    lifetime and are shared across every request pinned to it.

    Mutation raises ``TypeError``.  See :meth:`Instance.snapshot` for
    the creation-time quiescence requirement and the concurrency
    contract.
    """

    __slots__ = ("base",)

    def __init__(self, base: Instance, watermark: Optional[int] = None):
        from ..storage.snapshot import SnapshotFactStore

        if isinstance(base, SnapshotInstance):
            base = base.base
        super().__init__(store=SnapshotFactStore(base.store, watermark))
        self.base = base
        # Share the ordinal -> Atom decode cache: both sides only ever
        # insert (never delete), and every shared ordinal decodes to
        # the same fact, so concurrent lazy decoding is safe and work
        # done by one side benefits the other.
        self._atoms = base._atoms
        self.order_policy = base.order_policy
        self.kernel = base.kernel

    @property
    def watermark(self) -> int:
        """The row-count bound: this view is the base instance's first
        ``watermark`` facts."""
        return self._store.watermark

    def term_id(self, term: Term) -> int:
        # Never intern into the shared symbol table (see the store).
        return self._store.term_id(term)

    def add(self, fact: Atom) -> bool:
        raise TypeError(
            "snapshots are read-only: add facts to the base instance "
            "and take a fresh snapshot"
        )

    def add_row(self, pid: int, row: Row) -> Optional[int]:
        raise TypeError(
            "snapshots are read-only: add facts to the base instance "
            "and take a fresh snapshot"
        )

    def copy(self) -> Instance:
        """An independent, mutable in-memory instance holding exactly
        the facts below the watermark."""
        out = Instance(store=self._store.clone())
        out.order_policy = self.order_policy
        out.kernel = self.kernel
        return out

    def save(self, path: str, overwrite: bool = False):
        raise TypeError(
            "snapshots cannot be saved directly; materialize with "
            ".copy() first"
        )

    def __reduce__(self):
        # Pickles as a plain in-memory Instance holding the bounded
        # prefix (view objects don't survive an interpreter hop).
        return (Instance, (self.facts(),))

    def __repr__(self) -> str:
        return f"SnapshotInstance(<{len(self)} facts @ watermark>)"


def union(*instances: Instance) -> Instance:
    """The union of several instances as a fresh :class:`Instance`."""
    out = Instance()
    for inst in instances:
        out.add_all(inst)
    return out
