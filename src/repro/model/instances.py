"""Instances and databases.

An :class:`Instance` is a set of facts (ground atoms over constants and
labelled nulls).  A *database* is an instance without nulls.  Instances
are mutable (the chase grows them) but expose a frozen snapshot for
hashing and comparison.

Facts are indexed by predicate so that trigger computation — the hot
loop of every chase engine — touches only the relevant relation.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from .atoms import Atom, Predicate
from .schema import Schema
from .terms import Constant, Null, Term, is_ground


class Instance:
    """A set of facts, indexed by predicate.

    The iteration order is insertion order (deterministic chases need a
    deterministic fact order).
    """

    __slots__ = ("_facts", "_by_predicate")

    def __init__(self, facts: Iterable[Atom] = ()):
        self._facts: Dict[Atom, None] = {}
        self._by_predicate: Dict[Predicate, List[Atom]] = {}
        for fact in facts:
            self.add(fact)

    # -- mutation ----------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Insert ``fact``; return True iff it was new.

        Raises ``ValueError`` for non-ground atoms — instances contain
        facts only.
        """
        if not fact.is_ground():
            raise ValueError(f"instances hold ground atoms only, got {fact}")
        if fact in self._facts:
            return False
        self._facts[fact] = None
        self._by_predicate.setdefault(fact.predicate, []).append(fact)
        return True

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Insert many facts; return how many were new."""
        return sum(1 for f in facts if self.add(f))

    # -- queries ------------------------------------------------------------

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return set(self._facts) == set(other._facts)

    def __repr__(self) -> str:
        if len(self) <= 8:
            inner = ", ".join(str(f) for f in self)
            return f"Instance({{{inner}}})"
        return f"Instance(<{len(self)} facts>)"

    def facts(self) -> Tuple[Atom, ...]:
        """All facts in insertion order."""
        return tuple(self._facts)

    def facts_with_predicate(self, predicate: Predicate) -> Tuple[Atom, ...]:
        """The facts of one relation, in insertion order."""
        return tuple(self._by_predicate.get(predicate, ()))

    def predicates(self) -> FrozenSet[Predicate]:
        """The predicates with at least one fact."""
        return frozenset(
            p for p, rows in self._by_predicate.items() if rows
        )

    def schema(self) -> Schema:
        """The schema induced by the instance's facts."""
        return Schema(self.predicates())

    def active_domain(self) -> FrozenSet[Term]:
        """All terms occurring in some fact."""
        out: Set[Term] = set()
        for fact in self._facts:
            out.update(fact.terms)
        return frozenset(out)

    def constants(self) -> FrozenSet[Constant]:
        """All constants occurring in some fact."""
        return frozenset(
            t for t in self.active_domain() if isinstance(t, Constant)
        )

    def nulls(self) -> FrozenSet[Null]:
        """All labelled nulls occurring in some fact."""
        return frozenset(
            t for t in self.active_domain() if isinstance(t, Null)
        )

    def is_database(self) -> bool:
        """True iff the instance is null-free."""
        return not self.nulls()

    def copy(self) -> "Instance":
        """An independent copy sharing no mutable state."""
        return Instance(self._facts)

    def frozen(self) -> FrozenSet[Atom]:
        """A hashable snapshot of the fact set."""
        return frozenset(self._facts)


class Database(Instance):
    """An instance that rejects nulls — the chase's input."""

    __slots__ = ()

    def add(self, fact: Atom) -> bool:
        if fact.nulls():
            raise ValueError(f"databases are null-free, got {fact}")
        return super().add(fact)

    def copy(self) -> "Database":
        return Database(self.facts())


def union(*instances: Instance) -> Instance:
    """The union of several instances as a fresh :class:`Instance`."""
    out = Instance()
    for inst in instances:
        out.add_all(inst)
    return out
