"""Instances and databases, on an interned-id columnar fact core.

An :class:`Instance` is a set of facts (ground atoms over constants and
labelled nulls).  A *database* is an instance without nulls.  Instances
are mutable (the chase grows them) but expose a frozen snapshot for
hashing and comparison.

Internally an instance no longer stores :class:`~repro.model.atoms.Atom`
objects at all.  Every term and predicate is interned to a dense int in
a per-instance :class:`~repro.model.symbols.SymbolTable`, and each
relation is an append-only list of int-tuple *rows*, indexed two ways:

* by predicate id, giving each relation's rows in insertion order; and
* by ``(pred_id, position, term_id)``, the term-level hash indexes the
  join engine (:mod:`repro.model.joinplan`) probes with the ids already
  bound by outer join levels — int hashing and int equality instead of
  object ``__hash__``/``__eq__`` dispatch.

Atoms are materialized lazily, only at API boundaries (``facts()``,
iteration, ``facts_with_predicate``, provenance, printing): the fact
log keeps one slot per row, filled with the original object on the
object-level ``add()`` path and decoded on demand for rows created by
the engines' int-level ``add_row()`` path.  Materialization never
changes ids, rows, or iteration order, so it is invisible to
determinism (the lazy-atom argument is spelled out in PERF.md).

All indexes are maintained incrementally by ``add()``/``add_row()``;
facts are never removed, so index rows are append-only and iterating a
length-bounded prefix of a row list is a zero-copy snapshot.  The
active domain is likewise maintained incrementally (a satellite of the
interned-core PR): ``active_domain()`` no longer rescans all facts.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .atoms import Atom, Predicate
from .schema import Schema
from .symbols import SymbolTable
from .terms import Constant, Null, Term

Row = Tuple[int, ...]

_EMPTY_ROWS: List[Row] = []
_EMPTY_MEMBER: Dict[Row, int] = {}


class Instance:
    """A set of facts, indexed by predicate and by term occurrence.

    The iteration order is insertion order (deterministic chases need a
    deterministic fact order).
    """

    __slots__ = (
        "_symbols",
        "_pred_ids",
        "_pred_objs",
        "_log_pids",
        "_log_rows",
        "_atoms",
        "_member_by_pid",
        "_rows_by_pid",
        "_index",
        "_pos_card",
        "order_policy",
        "_domain_ids",
        "_domain_cache",
        "_constants_cache",
        "_nulls_cache",
        "_snapshots",
        "_steps",
        "_plans",
        "_templates",
    )

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        symbols: Optional[SymbolTable] = None,
    ):
        self._symbols = symbols if symbols is not None else SymbolTable()
        self._pred_ids: Dict[Predicate, int] = {}
        self._pred_objs: Dict[int, Predicate] = {}
        self._log_pids: List[int] = []
        self._log_rows: List[Row] = []
        # Sparse ordinal -> Atom store: filled with the caller's object
        # on object-level adds, decoded on demand everywhere else (most
        # engine-created facts never materialize at all).
        self._atoms: Dict[int, Atom] = {}
        self._member_by_pid: Dict[int, Dict[Row, int]] = {}
        self._rows_by_pid: Dict[int, List[Row]] = {}
        # (pred_id, position, term_id) -> rows carrying term_id there.
        self._index: Dict[Tuple[int, int, int], List[Row]] = {}
        # (pred_id, position) -> how many distinct term ids occur there
        # (maintained incrementally; the cost-based planner's column
        # cardinality statistic — see repro.query.planner).
        self._pos_card: Dict[Tuple[int, int], int] = {}
        # Join-order policy consulted by the chase engines' discovery
        # and head-probe plans ("heuristic" preserves the canonical
        # fair order; "cost" plans from the statistics above).
        self.order_policy: str = "heuristic"
        # Incrementally maintained active domain (term ids, insertion
        # order) plus size-validated decode caches.
        self._domain_ids: Dict[int, None] = {}
        self._domain_cache: Optional[FrozenSet[Term]] = None
        self._constants_cache: Optional[Tuple[int, FrozenSet[Constant]]] = None
        self._nulls_cache: Optional[Tuple[int, FrozenSet[Null]]] = None
        # Cached facts_with_predicate() tuples, invalidated by length.
        self._snapshots: Dict[int, Tuple[Atom, ...]] = {}
        # Join-engine resolution caches (managed by repro.model.joinplan
        # and repro.chase.triggers; they die with the instance, unlike
        # the old global caches).
        self._steps: Dict = {}
        self._plans: Dict = {}
        self._templates: Dict = {}
        if (
            symbols is None
            and type(self) is Instance
            and isinstance(facts, Instance)
            and type(facts) in (Instance, Database)
        ):
            # Columnar fast path: duplicate the int core wholesale
            # (same ids, same rows, same order) instead of re-encoding
            # every Atom — the chase engines copy their input database
            # this way.  Subclasses fall through to per-fact adds so
            # their add() checks still run.
            self._copy_core(facts)
            return
        for fact in facts:
            self.add(fact)

    def _copy_core(self, other: "Instance") -> None:
        self._symbols = other._symbols.clone()
        self._pred_ids = dict(other._pred_ids)
        self._pred_objs = dict(other._pred_objs)
        self._log_pids = list(other._log_pids)
        self._log_rows = list(other._log_rows)
        self._atoms = dict(other._atoms)
        self._member_by_pid = {
            pid: dict(member)
            for pid, member in other._member_by_pid.items()
        }
        self._rows_by_pid = {
            pid: list(rows) for pid, rows in other._rows_by_pid.items()
        }
        self._index = {key: list(rows) for key, rows in other._index.items()}
        self._pos_card = dict(other._pos_card)
        self.order_policy = other.order_policy
        self._domain_ids = dict(other._domain_ids)

    # -- interning ---------------------------------------------------------

    def pred_id(self, predicate: Predicate) -> int:
        """The (interning) dense id of ``predicate``."""
        pid = self._pred_ids.get(predicate)
        if pid is None:
            pid = len(self._pred_objs)
            while pid in self._pred_objs:  # primed tables may be sparse
                pid += 1
            self._pred_ids[predicate] = pid
            self._pred_objs[pid] = predicate
        return pid

    def pred_id_get(self, predicate: Predicate) -> Optional[int]:
        """The id of ``predicate`` if seen before, else ``None``."""
        return self._pred_ids.get(predicate)

    def predicate_of(self, pid: int) -> Predicate:
        """Decode a predicate id."""
        return self._pred_objs[pid]

    def prime_predicate(self, predicate: Predicate, pid: int) -> None:
        """Install a parent-assigned predicate id (worker mirrors)."""
        known = self._pred_ids.get(predicate)
        if known is not None:
            if known != pid:
                raise ValueError(
                    f"{predicate} already has id {known}, not {pid}"
                )
            return
        self._pred_ids[predicate] = pid
        self._pred_objs[pid] = predicate

    def term_id(self, term: Term) -> int:
        """The (interning) dense id of ``term``."""
        return self._symbols.intern(term)

    def term_id_get(self, term: Term) -> Optional[int]:
        """The id of ``term`` if interned, else ``None``."""
        return self._symbols.get(term)

    def term_of(self, tid: int) -> Term:
        """Decode a term id."""
        return self._symbols.obj(tid)

    @property
    def symbols(self) -> SymbolTable:
        """The instance's symbol table (terms only; predicates are kept
        in a separate id space)."""
        return self._symbols

    def prepare_rules(self, rules: Iterable) -> None:
        """Pre-intern every predicate and constant of ``rules`` in a
        fixed order (rule-major, body before head, position order).

        Engines call this once, serially, before any batched round so
        that threaded discovery only ever *reads* the symbol table —
        id assignment order can then never depend on thread timing.
        """
        from .terms import Variable

        for rule in rules:
            for atom in rule.body + rule.head:
                self.pred_id(atom.predicate)
                for term in atom.terms:
                    if not isinstance(term, Variable):
                        self.term_id(term)

    # -- mutation ----------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Insert ``fact``; return True iff it was new.

        Raises ``ValueError`` for non-ground atoms — instances contain
        facts only.
        """
        if not fact.is_ground():
            raise ValueError(f"instances hold ground atoms only, got {fact}")
        pid = self.pred_id(fact.predicate)
        intern = self._symbols.intern
        row = tuple(intern(t) for t in fact.terms)
        ordinal = self.add_row(pid, row)
        if ordinal is None:
            return False
        # Keep the caller's object so facts() hands back identical
        # Atoms for object-level insertions (and skips a decode).
        self._atoms[ordinal] = fact
        return True

    def add_row(self, pid: int, row: Row) -> Optional[int]:
        """Int-level insert: add ``row`` under predicate id ``pid``.

        Returns the new fact's ordinal, or ``None`` if it was already
        present.  The Atom is materialized lazily.  No groundness check
        — ids always denote ground terms.
        """
        member = self._member_by_pid.get(pid)
        if member is None:
            member = self._member_by_pid[pid] = {}
            self._rows_by_pid[pid] = []
        if row in member:
            return None
        log_rows = self._log_rows
        ordinal = len(log_rows)
        member[row] = ordinal
        self._log_pids.append(pid)
        log_rows.append(row)
        self._rows_by_pid[pid].append(row)
        index_get = self._index.get
        index_set = self._index.__setitem__
        domain = self._domain_ids
        pos_card = self._pos_card
        position = 0
        for tid in row:
            key = (pid, position, tid)
            rows = index_get(key)
            if rows is None:
                index_set(key, [row])
                # A term already indexed somewhere is already in the
                # domain; only first-time index rows can introduce one.
                domain[tid] = None
                # First occurrence of tid at this column: one more
                # distinct value for the planner's cardinality stats.
                ckey = (pid, position)
                pos_card[ckey] = pos_card.get(ckey, 0) + 1
            else:
                rows.append(row)
            position += 1
        return ordinal

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Insert many facts; return how many were new."""
        return sum(1 for f in facts if self.add(f))

    # -- materialization ---------------------------------------------------

    def atom_at(self, ordinal: int) -> Atom:
        """The fact at log position ``ordinal`` (materialized lazily)."""
        atom = self._atoms.get(ordinal)
        if atom is None:
            obj = self._symbols.obj
            atom = Atom(
                self._pred_objs[self._log_pids[ordinal]],
                [obj(t) for t in self._log_rows[ordinal]],
            )
            self._atoms[ordinal] = atom
        return atom

    def row_at(self, ordinal: int) -> Tuple[int, Row]:
        """``(pred_id, row)`` at log position ``ordinal``."""
        return self._log_pids[ordinal], self._log_rows[ordinal]

    def ordinal_of(self, fact: Atom) -> Optional[int]:
        """The log position of ``fact``, or ``None`` if absent."""
        pid = self._pred_ids.get(fact.predicate)
        if pid is None:
            return None
        get = self._symbols.get
        row: List[int] = []
        for term in fact.terms:
            tid = get(term)
            if tid is None:
                return None
            row.append(tid)
        return self._member_by_pid.get(pid, _EMPTY_MEMBER).get(tuple(row))

    # -- queries ------------------------------------------------------------

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Atom):
            return False
        return self.ordinal_of(fact) is not None

    def __iter__(self) -> Iterator[Atom]:
        for ordinal in range(len(self._log_rows)):
            yield self.atom_at(ordinal)

    def __len__(self) -> int:
        return len(self._log_rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return set(self) == set(other)

    def __repr__(self) -> str:
        if len(self) <= 8:
            inner = ", ".join(str(f) for f in self)
            return f"Instance({{{inner}}})"
        return f"Instance(<{len(self)} facts>)"

    def __reduce__(self):
        # Ship the fact tuple only; the receiving interpreter re-interns
        # every symbol and rebuilds the indexes (whose dict keys would
        # otherwise carry hashes from the sending interpreter).  Also
        # covers Database: ``self.__class__`` re-runs its null check.
        return (self.__class__, (self.facts(),))

    def facts(self) -> Tuple[Atom, ...]:
        """All facts in insertion order."""
        atom_at = self.atom_at
        return tuple(atom_at(o) for o in range(len(self._log_rows)))

    def facts_with_predicate(self, predicate: Predicate) -> Tuple[Atom, ...]:
        """The facts of one relation, in insertion order.

        The returned tuple is cached and only rebuilt after the
        relation has grown, so calling this in a loop is cheap; callers
        may hold on to it as an immutable snapshot.
        """
        pid = self._pred_ids.get(predicate)
        if pid is None:
            return ()
        member = self._member_by_pid.get(pid)
        if not member:
            return ()
        cached = self._snapshots.get(pid)
        if cached is None or len(cached) != len(member):
            atom_at = self.atom_at
            # Membership values are ordinals in insertion order.
            cached = tuple(atom_at(o) for o in member.values())
            self._snapshots[pid] = cached
        return cached

    def count_with_predicate(self, predicate: Predicate) -> int:
        """How many facts one relation holds (no allocation)."""
        pid = self._pred_ids.get(predicate)
        if pid is None:
            return 0
        rows = self._rows_by_pid.get(pid)
        return len(rows) if rows else 0

    def facts_matching(
        self, predicate: Predicate, bindings: Mapping[int, Term]
    ) -> List[Atom]:
        """The facts of ``predicate`` carrying ``bindings[i]`` at every
        position ``i``, in insertion order.

        Probes the most selective term-level index among the bound
        positions and verifies only the *non-probed* positions; with
        every position bound this collapses to a single membership
        probe (mirroring the join engine's fully-bound fast path), and
        with empty ``bindings`` it is the whole relation.  Returns a
        fresh list the caller may keep.
        """
        pid = self._pred_ids.get(predicate)
        if pid is None:
            return []
        atom_at = self.atom_at
        if not bindings:
            member = self._member_by_pid.get(pid, _EMPTY_MEMBER)
            return [atom_at(o) for o in member.values()]
        get = self._symbols.get
        encoded: List[Tuple[int, int]] = []
        for position, term in bindings.items():
            if not 0 <= position < predicate.arity:
                # No fact has an out-of-range position bound.
                return []
            tid = get(term)
            if tid is None:
                return []
            encoded.append((position, tid))
        member = self._member_by_pid.get(pid, _EMPTY_MEMBER)
        if len(encoded) == predicate.arity:
            # Fully bound: the row is determined — one O(1) probe.
            probe = [0] * predicate.arity
            for position, tid in encoded:
                probe[position] = tid
            ordinal = member.get(tuple(probe))
            return [] if ordinal is None else [atom_at(ordinal)]
        index = self._index
        best: Optional[List[Row]] = None
        best_position = -1
        for position, tid in encoded:
            rows = index.get((pid, position, tid))
            if rows is None:
                return []
            if best is None or len(rows) < len(best):
                best = rows
                best_position = position
        assert best is not None
        rest = [(p, t) for p, t in encoded if p != best_position]
        if rest:
            matched = [
                row
                for row in best
                if all(row[p] == t for p, t in rest)
            ]
        else:
            matched = list(best)
        return [atom_at(member[row]) for row in matched]

    # -- join-engine accessors (internal, zero-copy) -----------------------

    def rows_of(self, pid: int) -> List[Row]:
        """Live insertion-ordered row list of one relation (do not
        mutate; may be empty and unregistered)."""
        return self._rows_by_pid.get(pid, _EMPTY_ROWS)

    def probe_rows(self, pid: int, position: int, tid: int) -> List[Row]:
        """Live row list of the ``(pred_id, position, term_id)`` index
        (do not mutate)."""
        return self._index.get((pid, position, tid), _EMPTY_ROWS)

    def member_rows(self, pid: int) -> Dict[Row, int]:
        """Live ``row -> ordinal`` membership dict of one relation
        (do not mutate)."""
        return self._member_by_pid.get(pid, _EMPTY_MEMBER)

    def distinct_at(self, pid: int, position: int) -> int:
        """How many distinct term ids occur at ``position`` of relation
        ``pid`` (maintained incrementally — the planner's per-column
        cardinality statistic; 0 for empty/unknown columns)."""
        return self._pos_card.get((pid, position), 0)

    def ordinals_of(self, pid: int) -> List[int]:
        """Insertion-ordered fact ordinals of one relation (a fresh
        list; membership values are ordinals in insertion order)."""
        return list(self._member_by_pid.get(pid, _EMPTY_MEMBER).values())

    def predicates(self) -> FrozenSet[Predicate]:
        """The predicates with at least one fact."""
        return frozenset(
            self._pred_objs[pid]
            for pid, rows in self._rows_by_pid.items()
            if rows
        )

    def schema(self) -> Schema:
        """The schema induced by the instance's facts."""
        return Schema(self.predicates())

    def active_domain(self) -> FrozenSet[Term]:
        """All terms occurring in some fact.

        Maintained incrementally by ``add_row`` — no rescan; the
        decoded frozenset is cached until the domain grows.
        """
        cached = self._domain_cache
        if cached is not None and len(cached) == len(self._domain_ids):
            return cached
        obj = self._symbols.obj
        cached = frozenset(obj(tid) for tid in self._domain_ids)
        self._domain_cache = cached
        return cached

    def constants(self) -> FrozenSet[Constant]:
        """All constants occurring in some fact."""
        size = len(self._domain_ids)
        cached = self._constants_cache
        if cached is not None and cached[0] == size:
            return cached[1]
        out = frozenset(
            t for t in self.active_domain() if isinstance(t, Constant)
        )
        self._constants_cache = (size, out)
        return out

    def nulls(self) -> FrozenSet[Null]:
        """All labelled nulls occurring in some fact."""
        size = len(self._domain_ids)
        cached = self._nulls_cache
        if cached is not None and cached[0] == size:
            return cached[1]
        out = frozenset(
            t for t in self.active_domain() if isinstance(t, Null)
        )
        self._nulls_cache = (size, out)
        return out

    def is_database(self) -> bool:
        """True iff the instance is null-free."""
        return not self.nulls()

    def copy(self) -> "Instance":
        """An independent copy sharing no mutable state."""
        return Instance(self)

    def frozen(self) -> FrozenSet[Atom]:
        """A hashable snapshot of the fact set."""
        return frozenset(self)


class Database(Instance):
    """An instance that rejects nulls — the chase's input."""

    __slots__ = ()

    def add(self, fact: Atom) -> bool:
        if fact.nulls():
            raise ValueError(f"databases are null-free, got {fact}")
        return super().add(fact)

    def copy(self) -> "Database":
        return Database(self.facts())


def union(*instances: Instance) -> Instance:
    """The union of several instances as a fresh :class:`Instance`."""
    out = Instance()
    for inst in instances:
        out.add_all(inst)
    return out
