"""Instances and databases.

An :class:`Instance` is a set of facts (ground atoms over constants and
labelled nulls).  A *database* is an instance without nulls.  Instances
are mutable (the chase grows them) but expose a frozen snapshot for
hashing and comparison.

Facts are indexed two ways so that trigger computation — the hot loop
of every chase engine — touches as few facts as possible:

* by predicate, giving each relation's rows in insertion order; and
* by ``(predicate, position, term)``, the term-level hash indexes that
  the join engine (:mod:`repro.model.joinplan`) probes with the values
  already bound by outer join levels.

Both indexes are maintained incrementally by :meth:`Instance.add`;
facts are never removed, so index rows are append-only and iterating a
length-bounded prefix of a row list is a zero-copy snapshot.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .atoms import Atom, Predicate
from .schema import Schema
from .terms import Constant, Null, Term


_EMPTY_ROWS: List["Atom"] = []


class Instance:
    """A set of facts, indexed by predicate and by term occurrence.

    The iteration order is insertion order (deterministic chases need a
    deterministic fact order).
    """

    __slots__ = ("_facts", "_by_predicate", "_by_term", "_snapshots")

    def __init__(self, facts: Iterable[Atom] = ()):
        self._facts: Dict[Atom, None] = {}
        self._by_predicate: Dict[Predicate, List[Atom]] = {}
        # (predicate, position, term) -> facts with `term` at `position`.
        self._by_term: Dict[Tuple[Predicate, int, Term], List[Atom]] = {}
        # Cached facts_with_predicate() tuples, invalidated by length.
        self._snapshots: Dict[Predicate, Tuple[Atom, ...]] = {}
        for fact in facts:
            self.add(fact)

    # -- mutation ----------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Insert ``fact``; return True iff it was new.

        Raises ``ValueError`` for non-ground atoms — instances contain
        facts only.
        """
        if not fact.is_ground():
            raise ValueError(f"instances hold ground atoms only, got {fact}")
        if fact in self._facts:
            return False
        self._facts[fact] = None
        predicate = fact.predicate
        self._by_predicate.setdefault(predicate, []).append(fact)
        by_term = self._by_term
        for position, term in enumerate(fact.terms):
            by_term.setdefault((predicate, position, term), []).append(fact)
        return True

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Insert many facts; return how many were new."""
        return sum(1 for f in facts if self.add(f))

    # -- queries ------------------------------------------------------------

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return set(self._facts) == set(other._facts)

    def __repr__(self) -> str:
        if len(self) <= 8:
            inner = ", ".join(str(f) for f in self)
            return f"Instance({{{inner}}})"
        return f"Instance(<{len(self)} facts>)"

    def __reduce__(self):
        # Ship the fact tuple only; the receiving interpreter rebuilds
        # the predicate and term-level indexes (whose dict keys would
        # otherwise carry hashes from the sending interpreter).  Also
        # covers Database: ``self.__class__`` re-runs its null check.
        return (self.__class__, (self.facts(),))

    def facts(self) -> Tuple[Atom, ...]:
        """All facts in insertion order."""
        return tuple(self._facts)

    def facts_with_predicate(self, predicate: Predicate) -> Tuple[Atom, ...]:
        """The facts of one relation, in insertion order.

        The returned tuple is cached and only rebuilt after the
        relation has grown, so calling this in a loop is cheap; callers
        may hold on to it as an immutable snapshot.
        """
        rows = self._by_predicate.get(predicate)
        if not rows:
            return ()
        cached = self._snapshots.get(predicate)
        if cached is None or len(cached) != len(rows):
            cached = tuple(rows)
            self._snapshots[predicate] = cached
        return cached

    def count_with_predicate(self, predicate: Predicate) -> int:
        """How many facts one relation holds (no allocation)."""
        rows = self._by_predicate.get(predicate)
        return len(rows) if rows else 0

    def facts_matching(
        self, predicate: Predicate, bindings: Mapping[int, Term]
    ) -> List[Atom]:
        """The facts of ``predicate`` carrying ``bindings[i]`` at every
        position ``i``, in insertion order.

        Probes the most selective term-level index among the bound
        positions and filters the remainder; with empty ``bindings``
        this is the whole relation.  Returns a fresh list the caller
        may keep.
        """
        items = list(bindings.items())
        if not items:
            return list(self._by_predicate.get(predicate, ()))
        by_term = self._by_term
        best: Optional[List[Atom]] = None
        for position, term in items:
            rows = by_term.get((predicate, position, term))
            if rows is None:
                return []
            if best is None or len(rows) < len(best):
                best = rows
        assert best is not None
        if len(items) == 1:
            return list(best)
        return [
            fact
            for fact in best
            if all(fact.terms[pos] == term for pos, term in items)
        ]

    # -- join-engine accessors (internal, zero-copy) -----------------------

    def _rows(self, predicate: Predicate) -> List[Atom]:
        """Live insertion-ordered row list of one relation (do not
        mutate; may be empty and unregistered)."""
        return self._by_predicate.get(predicate, _EMPTY_ROWS)

    def _probe(
        self, predicate: Predicate, position: int, term: Term
    ) -> List[Atom]:
        """Live row list of the ``(predicate, position, term)`` index
        (do not mutate)."""
        return self._by_term.get((predicate, position, term), _EMPTY_ROWS)

    def predicates(self) -> FrozenSet[Predicate]:
        """The predicates with at least one fact."""
        return frozenset(
            p for p, rows in self._by_predicate.items() if rows
        )

    def schema(self) -> Schema:
        """The schema induced by the instance's facts."""
        return Schema(self.predicates())

    def active_domain(self) -> FrozenSet[Term]:
        """All terms occurring in some fact."""
        out: Set[Term] = set()
        for fact in self._facts:
            out.update(fact.terms)
        return frozenset(out)

    def constants(self) -> FrozenSet[Constant]:
        """All constants occurring in some fact."""
        return frozenset(
            t for t in self.active_domain() if isinstance(t, Constant)
        )

    def nulls(self) -> FrozenSet[Null]:
        """All labelled nulls occurring in some fact."""
        return frozenset(
            t for t in self.active_domain() if isinstance(t, Null)
        )

    def is_database(self) -> bool:
        """True iff the instance is null-free."""
        return not self.nulls()

    def copy(self) -> "Instance":
        """An independent copy sharing no mutable state."""
        return Instance(self._facts)

    def frozen(self) -> FrozenSet[Atom]:
        """A hashable snapshot of the fact set."""
        return frozenset(self._facts)


class Database(Instance):
    """An instance that rejects nulls — the chase's input."""

    __slots__ = ()

    def add(self, fact: Atom) -> bool:
        if fact.nulls():
            raise ValueError(f"databases are null-free, got {fact}")
        return super().add(fact)

    def copy(self) -> "Database":
        return Database(self.facts())


def union(*instances: Instance) -> Instance:
    """The union of several instances as a fresh :class:`Instance`."""
    out = Instance()
    for inst in instances:
        out.add_all(inst)
    return out
