"""The logical model: terms, atoms, rules, schemas, instances, and
homomorphisms.

Everything else in the library is built on these types.  The public
names re-exported here form the stable surface of the model layer.
"""

from .atoms import (
    Atom,
    Position,
    Predicate,
    atoms_predicates,
    intern_predicate,
)
from .homomorphism import (
    Assignment,
    apply_assignment,
    has_homomorphism,
    homomorphisms,
    instance_homomorphism,
    is_homomorphically_equivalent,
    match_atom,
    naive_homomorphisms,
)
from .instances import Database, Instance, union
from .joinplan import (
    AtomStep,
    JoinPlan,
    atom_step,
    compile_plan,
    order_atoms,
    plan_for,
)
from .rules import (
    TGD,
    program_constants,
    program_predicates,
    validate_program,
)
from .schema import Schema
from .symbols import SymbolTable
from .terms import (
    Constant,
    Null,
    NullFactory,
    Term,
    Variable,
    intern_constant,
    intern_variable,
    is_constant,
    is_ground,
    is_null,
    is_variable,
)

__all__ = [
    "Assignment",
    "Atom",
    "AtomStep",
    "Constant",
    "Database",
    "Instance",
    "JoinPlan",
    "Null",
    "NullFactory",
    "Position",
    "Predicate",
    "Schema",
    "SymbolTable",
    "TGD",
    "Term",
    "Variable",
    "apply_assignment",
    "atom_step",
    "atoms_predicates",
    "compile_plan",
    "has_homomorphism",
    "homomorphisms",
    "instance_homomorphism",
    "intern_constant",
    "intern_predicate",
    "intern_variable",
    "is_constant",
    "is_ground",
    "is_homomorphically_equivalent",
    "is_null",
    "is_variable",
    "match_atom",
    "naive_homomorphisms",
    "order_atoms",
    "plan_for",
    "program_constants",
    "program_predicates",
    "union",
    "validate_program",
]
