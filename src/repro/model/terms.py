"""Terms of the logical language: constants, variables, and labelled nulls.

The chase manipulates three kinds of terms:

* :class:`Constant` — values from the active domain of a database.
* :class:`Variable` — placeholders occurring in rule bodies and heads.
* :class:`Null` — labelled nulls invented by the chase for existentially
  quantified variables.  Nulls carry a monotonically increasing index so
  that "born earlier/later" comparisons (used by the termination
  machinery and by tests) are well defined.

All terms are immutable, hashable, and totally ordered within their own
kind, which keeps instances and homomorphisms deterministic.

Pickling (the ``process`` round executor ships terms across interpreter
boundaries) deliberately does **not** use the default slot-state
protocol: every term caches its hash, and a cached ``_hash`` computed
under one interpreter's hash randomization is garbage under another's —
an unpickled term would be internally consistent but never collide with
an equal term built on the receiving side, silently breaking every
dict/set lookup.  Instead each class defines ``__reduce__`` to rebuild
through its constructor (recomputing the hash locally); constants and
variables additionally round-trip through ``threading.Lock``-guarded
intern tables, so unpickling N copies of the same name yields one
object and repeated cross-process rounds do not balloon memory.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Tuple, Union


class Constant:
    """A constant value from the domain of a database.

    Constants compare equal iff their names are equal.  The name may be
    any hashable printable value; strings are the common case.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: object):
        self.name = name
        self._hash = hash(("Constant", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Interned reconstruction: recomputes the hash on the receiving
        # interpreter and dedups repeated names.  Subclasses carrying
        # extra state (SkolemTerm) override this.
        return (intern_constant, (self.name,))

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return str(self.name) < str(other.name)

    def __repr__(self) -> str:
        return f"Constant({self.name!r})"

    def __str__(self) -> str:
        return str(self.name)


class Variable:
    """A universally or existentially quantified rule variable."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        self.name = name
        self._hash = hash(("Variable", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (intern_variable, (self.name,))

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Null:
    """A labelled null invented by a chase step.

    ``index`` orders nulls by creation time; the chase engines guarantee
    that a null created later has a strictly larger index.  ``origin``
    optionally records which rule invented the null (for diagnostics).
    """

    __slots__ = ("index", "origin", "_hash")

    def __init__(self, index: int, origin: str = ""):
        self.index = index
        self.origin = origin
        self._hash = hash(("Null", index))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and self.index == other.index

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Not interned: nulls are per-run and their indices unbounded.
        return (Null, (self.index, self.origin))

    def __lt__(self, other: "Null") -> bool:
        if not isinstance(other, Null):
            return NotImplemented
        return self.index < other.index

    def __repr__(self) -> str:
        return f"Null({self.index})"

    def __str__(self) -> str:
        return f"z{self.index}"


Term = Union[Constant, Variable, Null]


# -- intern tables ---------------------------------------------------------
#
# Unpickling funnels through these so that N pickled copies of the same
# constant/variable collapse to one object per interpreter.  The tables
# are lock-guarded: the ``threaded`` round executor may deserialize (or
# parsers may intern) from several threads at once, and check-then-set
# on a plain dict could hand out two distinct "canonical" objects.
# Only the canonical base classes are interned — subclasses (e.g. the
# MFA machinery's SkolemTerm) define their own ``__reduce__`` and never
# route here.

_CONSTANT_INTERN: Dict[object, Constant] = {}
_VARIABLE_INTERN: Dict[str, Variable] = {}
_INTERN_LOCK = threading.Lock()


def intern_constant(name: object) -> Constant:
    """The canonical :class:`Constant` for ``name`` (thread-safe)."""
    table = _CONSTANT_INTERN
    term = table.get(name)
    if term is None:
        with _INTERN_LOCK:
            term = table.get(name)
            if term is None:
                term = Constant(name)
                table[name] = term
    return term


def intern_variable(name: str) -> Variable:
    """The canonical :class:`Variable` for ``name`` (thread-safe)."""
    table = _VARIABLE_INTERN
    term = table.get(name)
    if term is None:
        with _INTERN_LOCK:
            term = table.get(name)
            if term is None:
                term = Variable(name)
                table[name] = term
    return term


def intern_table_sizes() -> Tuple[int, int]:
    """``(constants, variables)`` currently interned — for tests and
    memory diagnostics."""
    return len(_CONSTANT_INTERN), len(_VARIABLE_INTERN)


class NullFactory:
    """Thread-safe factory handing out fresh :class:`Null` terms.

    Each chase run owns its own factory so null indices are reproducible
    run-to-run (the global chase never shares factories between runs).
    """

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def fresh(self, origin: str = "") -> Null:
        """Return a null with the next unused index.

        ``next()`` on an :mod:`itertools` counter is atomic under
        CPython, so the hot path takes no lock; the lock is kept for
        :meth:`reserve`-style extensions and documents the contract.
        """
        return Null(next(self._counter), origin)

    def fresh_many(self, n: int, origin: str = "") -> list:
        """Return ``n`` fresh nulls, ordered by index."""
        return [self.fresh(origin) for _ in range(n)]


def is_constant(term: Term) -> bool:
    """True iff ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def is_variable(term: Term) -> bool:
    """True iff ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_null(term: Term) -> bool:
    """True iff ``term`` is a labelled :class:`Null`."""
    return isinstance(term, Null)


def is_ground(term: Term) -> bool:
    """True iff ``term`` may appear in an instance (constant or null)."""
    return isinstance(term, (Constant, Null))
