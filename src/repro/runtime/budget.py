"""Resource budgets and cooperative cancellation.

A :class:`Budget` is the structured alternative to "hope it finishes":
it carries a wall-clock deadline, round and fact caps, a working-set
memory ceiling, and a :class:`CancelToken`, and every round-based
engine checks it at round/batch boundaries.  A tripped budget never
interrupts a mutation — engines stop *between* trigger applications —
so a budget-stopped :class:`~repro.chase.result.ChaseResult` is always
round-consistent: the instance equals the database plus exactly the
facts of the recorded steps.

Stop reasons form a small closed vocabulary (:data:`STOP_REASONS`);
``Budget.check`` returns the first reason that applies and records it
(sticky — once tripped, a budget stays tripped), so layered callers
(engine → decider → CLI) all report the same verdict.

The clock is injectable, which is how the test suite produces
deterministic mid-round deadline stops without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..errors import BudgetExceededError
from . import faults

STOP_FIXPOINT = "fixpoint"
STOP_STEP_BUDGET = "step_budget"
STOP_DEADLINE = "deadline"
STOP_MEMORY = "memory"
STOP_CANCELLED = "cancelled"
STOP_EXECUTOR_DEGRADED = "executor_degraded"

#: Every value ``ChaseResult.stop_reason`` (and the CLI's exit-code
#: table) can take, in roughly increasing severity.
STOP_REASONS = (
    STOP_FIXPOINT,
    STOP_STEP_BUDGET,
    STOP_DEADLINE,
    STOP_MEMORY,
    STOP_CANCELLED,
    STOP_EXECUTOR_DEGRADED,
)

_PAGE_SIZE = 4096
try:
    _PAGE_SIZE = __import__("resource").getpagesize()
except Exception:  # pragma: no cover - non-POSIX fallback
    pass


def working_set_bytes() -> Optional[int]:
    """This process's resident working set, or ``None`` when no probe
    is available.

    Probes in order of fidelity: ``/proc/self/statm`` (current RSS,
    Linux), ``ru_maxrss`` (peak RSS, other POSIX), and tracemalloc
    (Python-level allocations, only when tracing is already on — the
    probe never *starts* tracing, which would slow the run it is
    guarding).  Fault-injected allocation spikes
    (:func:`repro.runtime.faults.alloc_spike_bytes`) are added on top.
    """
    spike = faults.alloc_spike_bytes()
    try:
        with open("/proc/self/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * _PAGE_SIZE + spike
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes; either way this is a
        # peak, i.e. a sound over-approximation of the current set.
        import sys

        scale = 1 if sys.platform == "darwin" else 1024
        return peak_kb * scale + spike
    except Exception:  # pragma: no cover - no resource module
        pass
    try:
        import tracemalloc

        if tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[0] + spike
    except Exception:  # pragma: no cover
        pass
    return spike if spike else None


class CancelToken:
    """A thread-safe cooperative cancellation flag.

    Create one, hand it to a :class:`Budget`, and call :meth:`cancel`
    from any thread (or a signal handler); the governed run stops at
    its next budget check with ``stop_reason == "cancelled"``.
    """

    __slots__ = ("_event",)

    def __init__(self):
        import threading

        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled() else "live"
        return f"CancelToken({state})"


class Budget:
    """A resource envelope for one governed run.

    Accepted limits: ``timeout_s`` (wall-clock deadline from
    ``start()``), ``max_memory_mb`` (process working-set ceiling),
    ``max_rounds`` (chase/saturation rounds), and a shared
    :class:`CancelToken` via ``cancel`` — cancelling the token stops
    every run whose budget carries it at the next check.  Pass one to
    ``run_chase``/``decide_termination``/query evaluation ::

        budget = Budget(timeout_s=5.0, max_memory_mb=512)
        result = run_chase(db, rules, "restricted", budget=budget)
        result.stop_reason   # "fixpoint", or what tripped

    All limits are optional; an all-``None`` budget still provides
    cancellation and resource accounting.  ``clock`` must be a
    monotonic zero-argument callable (injectable for deterministic
    tests).  ``check`` is sticky: the first limit to trip is the
    run's stop reason, and every later check returns it unchanged.
    Engines probe between trigger applications, so a tripped budget
    always yields a round-consistent partial result.

    Memory is probed at most every ``memory_check_every`` checks
    (reading ``/proc`` per chase step would be the overhead the bench
    gate forbids); deadline and cancellation are probed every check.
    """

    __slots__ = (
        "timeout_s",
        "max_rounds",
        "max_facts",
        "max_memory_mb",
        "cancel",
        "rounds",
        "stop_reason",
        "memory_check_every",
        "_clock",
        "_started_at",
        "_deadline",
        "_checks",
        "_last_memory",
    )

    def __init__(
        self,
        timeout_s: Optional[float] = None,
        max_rounds: Optional[int] = None,
        max_facts: Optional[int] = None,
        max_memory_mb: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
        clock: Callable[[], float] = time.monotonic,
        memory_check_every: int = 16,
    ):
        for name, value in (
            ("timeout_s", timeout_s),
            ("max_rounds", max_rounds),
            ("max_facts", max_facts),
            ("max_memory_mb", max_memory_mb),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        self.timeout_s = timeout_s
        self.max_rounds = max_rounds
        self.max_facts = max_facts
        self.max_memory_mb = max_memory_mb
        self.cancel = cancel if cancel is not None else CancelToken()
        self.rounds = 0
        self.stop_reason: Optional[str] = None
        self.memory_check_every = memory_check_every
        self._clock = clock
        self._started_at: Optional[float] = None
        self._deadline: Optional[float] = None
        self._checks = 0
        self._last_memory: Optional[int] = None

    def start(self) -> "Budget":
        """Arm the deadline; idempotent (the first caller wins, so a
        budget threaded through nested calls keeps one epoch)."""
        if self._started_at is None:
            self._started_at = self._clock()
            if self.timeout_s is not None:
                self._deadline = self._started_at + self.timeout_s
        return self

    def note_round(self) -> None:
        """Record one completed engine round (for stats and the
        ``max_rounds`` cap)."""
        self.rounds += 1

    def elapsed_s(self) -> float:
        """Seconds since :meth:`start` (0.0 before it)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining_s(self) -> Optional[float]:
        """Seconds left until the wall-clock deadline, floored at 0.0,
        or ``None`` when the budget has no deadline (or has not been
        started yet).  Per-request callers — the query server hands
        every request ``Budget(timeout_s=...)`` — use this to report
        how much of a deadline a finished request had to spare."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def check(self, facts: Optional[int] = None) -> Optional[str]:
        """The stop reason that applies now, or ``None`` to keep going.

        Probe order is cheapest-first: cancellation flag, round/fact
        caps, deadline, then (throttled) the memory ceiling.
        """
        reason = self.stop_reason
        if reason is not None:
            return reason
        self._checks += 1
        if self.cancel.cancelled():
            reason = STOP_CANCELLED
        elif self.max_rounds is not None and self.rounds >= self.max_rounds:
            reason = STOP_STEP_BUDGET
        elif (
            self.max_facts is not None
            and facts is not None
            and facts >= self.max_facts
        ):
            reason = STOP_STEP_BUDGET
        elif self._deadline is not None and self._clock() >= self._deadline:
            reason = STOP_DEADLINE
        elif self.max_memory_mb is not None and (
            self._checks % self.memory_check_every == 1
            or self.memory_check_every == 1
        ):
            measured = working_set_bytes()
            if measured is not None:
                self._last_memory = measured
                if measured > self.max_memory_mb * 1024 * 1024:
                    reason = STOP_MEMORY
        self.stop_reason = reason
        return reason

    def raise_if_exceeded(self, facts: Optional[int] = None) -> None:
        """``check``, but raising :class:`BudgetExceededError` — the
        form the verdict-returning deciders use (their "result" is an
        exception carrying the stop reason, not a partial instance)."""
        reason = self.check(facts=facts)
        if reason is not None:
            raise BudgetExceededError(
                f"resource budget exhausted ({reason}) after "
                f"{self.elapsed_s():.3f}s and {self.rounds} rounds",
                stop_reason=reason,
                stats=self.stats(),
            )

    def stats(self) -> Dict[str, object]:
        """Resource accounting for results and summaries."""
        out: Dict[str, object] = {
            "elapsed_s": round(self.elapsed_s(), 6),
            "rounds": self.rounds,
            "budget_checks": self._checks,
        }
        if self._last_memory is not None:
            out["memory_mb"] = round(self._last_memory / (1024 * 1024), 3)
        limits = {}
        if self.timeout_s is not None:
            limits["timeout_s"] = self.timeout_s
        if self.max_rounds is not None:
            limits["max_rounds"] = self.max_rounds
        if self.max_facts is not None:
            limits["max_facts"] = self.max_facts
        if self.max_memory_mb is not None:
            limits["max_memory_mb"] = self.max_memory_mb
        if limits:
            out["limits"] = limits
        return out

    def __repr__(self) -> str:
        parts = []
        if self.timeout_s is not None:
            parts.append(f"timeout_s={self.timeout_s}")
        if self.max_rounds is not None:
            parts.append(f"max_rounds={self.max_rounds}")
        if self.max_facts is not None:
            parts.append(f"max_facts={self.max_facts}")
        if self.max_memory_mb is not None:
            parts.append(f"max_memory_mb={self.max_memory_mb}")
        if self.stop_reason is not None:
            parts.append(f"stop_reason={self.stop_reason!r}")
        return f"Budget({', '.join(parts)})"
