"""Deterministic fault injection for the execution stack.

The fault plan travels in the ``REPRO_FAULTS`` environment variable —
the one channel that survives ``spawn``-context process creation — so
a test can arrange for *worker* processes to crash, stall, or spike
their apparent memory use without patching any code path.  The format
is a comma-separated list of directives::

    crash:N[:TOKEN_DIR]   crash (os._exit) the Nth..(first) worker batch;
                          with TOKEN_DIR, at most N crashes happen
                          *globally* (each crash claims a token file
                          atomically), so a respawned pool eventually
                          succeeds — or keeps dying when N is large.
    slow:SECONDS          sleep before evaluating each worker batch.
    spike:BYTES           report BYTES of extra working-set to the
                          memory probe (parent-side; makes memory-
                          ceiling stops deterministic).
    crash_ingest:N        crash (os._exit 42) the *server process*
                          during its Nth ingest — after the write-ahead
                          journal fsync, before the chase leg — the
                          deterministic version of "kill -9 mid-ingest"
                          the chaos driver (``ci/check_chaos.py``)
                          builds on.
    slow_accept:SECONDS   sleep at the top of every admitted service
                          request; lets overload tests saturate the
                          admission gate deterministically.
    torn_write            the next ingest-journal append writes only
                          half its record bytes and then crashes
                          (os._exit 42) — a torn write the journal
                          must detect and truncate at restart.

``crash`` only fires in worker processes (never in the parent or the
serial executor), so an injected fault exercises the pool-recovery
machinery rather than killing the run outright; the ``crash_ingest`` /
``slow_accept`` / ``torn_write`` family is serve-scoped and fires in
the *server* process, exercising the service's own recoverability
(journal replay, admission shedding) rather than the chase workers'.
All hooks are inert — a handful of dict lookups — when
``REPRO_FAULTS`` is unset.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, Optional, Tuple

ENV_VAR = "REPRO_FAULTS"

# Parsed plan cache, keyed on the raw env string so in-process tests
# that mutate os.environ are picked up immediately.
_parsed: Tuple[Optional[str], Dict] = (None, {})

# Per-process count of worker batches seen (crash candidates).
_batches_seen = 0


def _plan() -> Dict:
    """The active fault plan (parsed, cached per raw env value)."""
    global _parsed
    raw = os.environ.get(ENV_VAR)
    if raw == _parsed[0]:
        return _parsed[1]
    plan: Dict = {}
    if raw:
        for directive in raw.split(","):
            directive = directive.strip()
            if not directive:
                continue
            parts = directive.split(":")
            kind = parts[0]
            if kind == "crash":
                plan["crash_count"] = int(parts[1])
                plan["crash_dir"] = parts[2] if len(parts) > 2 else None
            elif kind == "slow":
                plan["slow_s"] = float(parts[1])
            elif kind == "spike":
                plan["spike_bytes"] = int(parts[1])
            elif kind == "crash_ingest":
                plan["crash_ingest"] = int(parts[1])
            elif kind == "slow_accept":
                plan["slow_accept_s"] = float(parts[1])
            elif kind == "torn_write":
                plan["torn_write"] = True
            else:
                raise ValueError(
                    f"unknown {ENV_VAR} directive {directive!r}"
                )
    _parsed = (raw, plan)
    return plan


def _in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def _claim_crash(crash_dir: Optional[str], count: int) -> bool:
    """Claim one of the ``count`` crash tokens; False when exhausted.

    Tokens are files created with ``O_CREAT | O_EXCL`` — atomic across
    processes — so at most ``count`` crashes happen in total no matter
    how many workers race for them.  Without a token directory the
    crash budget is per-process (the first ``count`` batches each
    worker sees).
    """
    if crash_dir is None:
        return _batches_seen <= count
    for index in range(count):
        path = os.path.join(crash_dir, f"crash-{index}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


def batch_hook() -> None:
    """Called at every worker batch entry point.

    Applies the active plan: optional slow-down, then (workers only) a
    crash if a crash token is available.  ``os._exit`` — not an
    exception — so the parent sees genuine worker death, exactly like
    an OOM kill or segfault.
    """
    plan = _plan()
    if not plan:
        return
    global _batches_seen
    _batches_seen += 1
    slow = plan.get("slow_s")
    if slow:
        import time

        time.sleep(slow)
    count = plan.get("crash_count")
    if count and _in_worker() and _claim_crash(plan.get("crash_dir"), count):
        os._exit(42)


def alloc_spike_bytes() -> int:
    """Extra bytes the memory probe should report (0 when no spike is
    injected) — lets tests trip the memory ceiling deterministically
    without actually allocating."""
    return _plan().get("spike_bytes", 0)


# -- serve-scoped faults (the service chaos harness) -------------------------

# Per-process count of ingest legs seen (crash_ingest candidates).
_ingests_seen = 0


def serve_request_hook() -> None:
    """Called at the top of every *admitted* service request (while it
    holds its admission slot).  ``slow_accept:S`` sleeps here, so
    overload tests can pin capacity deterministically."""
    slow = _plan().get("slow_accept_s")
    if slow:
        import time

        time.sleep(slow)


def serve_ingest_hook() -> None:
    """Called once per ingest leg, after the write-ahead journal entry
    is durable and before the chase extends.  ``crash_ingest:N`` makes
    the Nth call ``os._exit(42)`` — the server dies exactly like a
    ``kill -9`` landing between the WAL ack point and the chase, the
    window journal replay exists to cover."""
    count = _plan().get("crash_ingest")
    if not count:
        return
    global _ingests_seen
    _ingests_seen += 1
    if _ingests_seen == count:
        os._exit(42)


def torn_write_planned() -> bool:
    """True when the next journal append should tear (write half its
    record, then crash) — consumed by the journal itself so the torn
    bytes genuinely reach the file before the process dies."""
    return bool(_plan().get("torn_write"))
