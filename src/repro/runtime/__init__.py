"""Runtime governance: resource budgets, cancellation, fault injection.

The chase is undecidable in general, so the engine's honest interface
is "run until fixpoint **or** a resource limit, and always say which".
This package supplies the *which*:

* :mod:`repro.runtime.budget` — :class:`Budget` (wall-clock deadline,
  round/fact caps, memory ceiling) and :class:`CancelToken`
  (cooperative cancellation), checked by every round-based engine at
  round/batch boundaries;
* :mod:`repro.runtime.faults` — a deterministic fault-injection
  harness (worker crashes, slow batches, allocation spikes) driven by
  the ``REPRO_FAULTS`` environment variable, so spawned workers see
  the same fault plan as the parent.  Used by the fault-path test
  suite; inert unless the variable is set.
"""

from .budget import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    STOP_EXECUTOR_DEGRADED,
    STOP_FIXPOINT,
    STOP_MEMORY,
    STOP_REASONS,
    STOP_STEP_BUDGET,
    Budget,
    CancelToken,
    working_set_bytes,
)

__all__ = [
    "Budget",
    "CancelToken",
    "STOP_CANCELLED",
    "STOP_DEADLINE",
    "STOP_EXECUTOR_DEGRADED",
    "STOP_FIXPOINT",
    "STOP_MEMORY",
    "STOP_REASONS",
    "STOP_STEP_BUDGET",
    "working_set_bytes",
]
