"""Seeded random rule-set generators.

Used by the property-based tests and the benchmarks to sample SL / L /
G programs with controllable shape.  All generators take an integer
``seed`` and are fully deterministic for a given argument tuple.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..model import Atom, Constant, Predicate, TGD, Term, Variable


def _predicates(
    rng: random.Random, count: int, max_arity: int, min_arity: int = 1
) -> List[Predicate]:
    return [
        Predicate(f"p{i}", rng.randint(min_arity, max_arity))
        for i in range(count)
    ]


def _fresh_variables(count: int, prefix: str = "X") -> List[Variable]:
    return [Variable(f"{prefix}{i + 1}") for i in range(count)]


_RULE_CONSTANTS = (Constant("k1"), Constant("k2"))


def random_simple_linear(
    num_rules: int,
    num_predicates: int = 4,
    max_arity: int = 3,
    exist_prob: float = 0.5,
    seed: int = 0,
    constant_prob: float = 0.0,
) -> List[TGD]:
    """Random SL set: single-atom bodies, no repeated body variables.

    ``constant_prob`` sprinkles rule constants into body and head
    positions — the regime where the Theorem 1 characterizations stop
    applying and the critical deciders must take over.
    """
    rng = random.Random(("sl", num_rules, num_predicates, max_arity,
                         exist_prob, seed, constant_prob).__hash__())
    predicates = _predicates(rng, num_predicates, max_arity)
    rules: List[TGD] = []
    for index in range(num_rules):
        body_pred = rng.choice(predicates)
        body_terms: List[Term] = []
        for position in range(body_pred.arity):
            if rng.random() < constant_prob:
                body_terms.append(rng.choice(_RULE_CONSTANTS))
            else:
                body_terms.append(Variable(f"X{position + 1}"))
        body = Atom(body_pred, body_terms)
        body_vars = sorted(body.variables())
        head_pred = rng.choice(predicates)
        head_terms: List[Term] = []
        existential_counter = 0
        for _ in range(head_pred.arity):
            if rng.random() < constant_prob:
                head_terms.append(rng.choice(_RULE_CONSTANTS))
            elif body_vars and rng.random() >= exist_prob:
                head_terms.append(rng.choice(body_vars))
            else:
                existential_counter += 1
                head_terms.append(Variable(f"Z{existential_counter}"))
        rules.append(
            TGD([body], [Atom(head_pred, head_terms)], label=f"r{index + 1}")
        )
    return rules


def random_linear(
    num_rules: int,
    num_predicates: int = 4,
    max_arity: int = 3,
    exist_prob: float = 0.5,
    repeat_prob: float = 0.4,
    seed: int = 0,
) -> List[TGD]:
    """Random linear set; body variables may repeat (the Theorem 2
    regime where plain WA/RA become incomplete)."""
    rng = random.Random(("l", num_rules, num_predicates, max_arity,
                         exist_prob, repeat_prob, seed).__hash__())
    predicates = _predicates(rng, num_predicates, max_arity)
    rules: List[TGD] = []
    for index in range(num_rules):
        body_pred = rng.choice(predicates)
        body_terms: List[Variable] = []
        for position in range(body_pred.arity):
            if body_terms and rng.random() < repeat_prob:
                body_terms.append(rng.choice(body_terms))
            else:
                body_terms.append(Variable(f"X{position + 1}"))
        body = Atom(body_pred, body_terms)
        body_vars = sorted(body.variables())
        head_pred = rng.choice(predicates)
        head_terms: List[Variable] = []
        existential_counter = 0
        for _ in range(head_pred.arity):
            if body_vars and rng.random() >= exist_prob:
                head_terms.append(rng.choice(body_vars))
            else:
                existential_counter += 1
                head_terms.append(Variable(f"Z{existential_counter}"))
        rules.append(
            TGD([body], [Atom(head_pred, head_terms)], label=f"r{index + 1}")
        )
    return rules


def random_guarded(
    num_rules: int,
    num_predicates: int = 4,
    max_arity: int = 3,
    side_atoms: int = 1,
    exist_prob: float = 0.5,
    seed: int = 0,
) -> List[TGD]:
    """Random guarded set: a guard atom over all body variables plus up
    to ``side_atoms`` additional body atoms over subsets of them."""
    rng = random.Random(("g", num_rules, num_predicates, max_arity,
                         side_atoms, exist_prob, seed).__hash__())
    predicates = _predicates(rng, num_predicates, max_arity)
    rules: List[TGD] = []
    for index in range(num_rules):
        guard_pred = rng.choice(
            [p for p in predicates if p.arity == max(q.arity for q in predicates)]
        )
        guard_vars = _fresh_variables(guard_pred.arity)
        body: List[Atom] = [Atom(guard_pred, guard_vars)]
        distinct_vars = sorted(set(guard_vars))
        for _ in range(rng.randint(0, side_atoms)):
            side_pred = rng.choice(
                [p for p in predicates if p.arity <= len(distinct_vars)]
            )
            body.append(
                Atom(side_pred, rng.sample(distinct_vars, side_pred.arity))
            )
        head_pred = rng.choice(predicates)
        head_terms: List[Variable] = []
        existential_counter = 0
        for _ in range(head_pred.arity):
            if rng.random() >= exist_prob:
                head_terms.append(rng.choice(distinct_vars))
            else:
                existential_counter += 1
                head_terms.append(Variable(f"Z{existential_counter}"))
        rules.append(
            TGD(body, [Atom(head_pred, head_terms)], label=f"r{index + 1}")
        )
    return rules


def random_database(
    rules: Sequence[TGD],
    num_constants: int = 3,
    facts_per_predicate: int = 2,
    seed: int = 0,
):
    """A random database over the schema of ``rules``."""
    from ..model import Constant, Database, Schema

    rng = random.Random(("db", num_constants, facts_per_predicate, seed
                         ).__hash__())
    constants = [Constant(f"c{i + 1}") for i in range(num_constants)]
    database = Database()
    for pred in Schema.from_rules(rules):
        for _ in range(facts_per_predicate):
            database.add(
                Atom(pred, [rng.choice(constants) for _ in range(pred.arity)])
            )
    return database
