"""Parametric rule-set families used by the scaling benchmarks.

Each family is a pure function of its size parameters, so benchmark
series are reproducible and the expected verdict of every instance is
known by construction (the benches assert them).
"""

from __future__ import annotations

from typing import List

from ..model import Atom, Predicate, TGD, Variable


def chain_family(length: int, arity: int = 2) -> List[TGD]:
    """A terminating SL chain  p1 → p2 → ... → p(length+1).

    Each rule shifts the frontier left and invents the last argument
    (``p_i(X1,...,Xk) → ∃Z p_{i+1}(X2,...,Xk,Z)``).  The dependency
    graph is a DAG, so the family is richly acyclic and the (S)L
    deciders should scale linearly in ``length`` (Theorem 3's NL upper
    bound, E3).
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    rules: List[TGD] = []
    for i in range(length):
        rules.append(
            _shift_rule(f"p{i + 1}", f"p{i + 2}", arity, f"chain{i + 1}")
        )
    return rules


def cycle_family(length: int, arity: int = 2) -> List[TGD]:
    """The chain closed into a null-creating cycle — non-terminating
    for both chase variants (a dangerous cycle that *is* realizable:
    the shifted frontier carries a fresh null around every lap)."""
    if arity < 2:
        raise ValueError(
            "arity must be >= 2 (an arity-1 shift has an empty frontier "
            "and the semi-oblivious chase fires it only once)"
        )
    rules = chain_family(length, arity)
    rules.append(_shift_rule(f"p{length + 1}", "p1", arity, "close"))
    return rules


def _shift_rule(source: str, target: str, arity: int, label: str) -> TGD:
    body_vars = [Variable(f"X{j + 1}") for j in range(arity)]
    head_terms = body_vars[1:] + [Variable("Z")]
    return TGD(
        [Atom(Predicate(source, arity), body_vars)],
        [Atom(Predicate(target, arity), head_terms)],
        label=label,
    )


def shifting_family(arity: int) -> List[TGD]:
    """One linear rule  p(X1,...,Xk) → ∃Z p(X2,...,Xk,Z).

    Non-terminating for every k; the number of distinct equality
    patterns the critical chase visits grows with the arity, making
    this the arity-blowup series for Theorem 3(2)/Theorem 4 (E3/E4).
    """
    if arity < 1:
        raise ValueError("arity must be >= 1")
    p = Predicate("p", arity)
    body_vars = [Variable(f"X{j + 1}") for j in range(arity)]
    head_terms = body_vars[1:] + [Variable("Z")]
    return [TGD([Atom(p, body_vars)], [Atom(p, head_terms)], label="shift")]


def diagonal_family(arity: int) -> List[TGD]:
    """One linear rule  p(X,...,X) → ∃Z p(X,...,X,Z)-style diagonal.

    ``p(X,X,...,X) → ∃Z p(Z,X,...,X)``: not weakly acyclic, yet
    terminating — the body demands all-equal arguments which the head
    never reproduces.  The Theorem 2 separation family (E2), scalable
    in the arity.
    """
    if arity < 2:
        raise ValueError("arity must be >= 2")
    p = Predicate("p", arity)
    x = Variable("X")
    body = Atom(p, [x] * arity)
    head = Atom(p, [Variable("Z")] + [x] * (arity - 1))
    return [TGD([body], [head], label="diag")]


def guarded_tower_family(levels: int) -> List[TGD]:
    """A terminating guarded family with genuine multi-atom bodies.

    Level ``i`` creates a fresh witness guarded by level ``i``'s
    relation plus a side atom; no level feeds back, so the type graph
    is a DAG of depth ``levels`` (the E4 scaling series).
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    rules: List[TGD] = []
    for i in range(levels):
        rel = Predicate(f"r{i + 1}", 2)
        mark = Predicate(f"m{i + 1}", 1)
        nxt = Predicate(f"r{i + 2}", 2)
        nxt_mark = Predicate(f"m{i + 2}", 1)
        x, y, z = Variable("X"), Variable("Y"), Variable("Z")
        rules.append(
            TGD(
                [Atom(rel, [x, y]), Atom(mark, [y])],
                [Atom(nxt, [y, z]), Atom(nxt_mark, [z])],
                label=f"tower{i + 1}",
            )
        )
    return rules


def guarded_loop_family(levels: int) -> List[TGD]:
    """The tower closed back to level 1 — non-terminating guarded."""
    rules = guarded_tower_family(levels)
    last_rel = Predicate(f"r{levels + 1}", 2)
    last_mark = Predicate(f"m{levels + 1}", 1)
    first_rel = Predicate("r1", 2)
    first_mark = Predicate("m1", 1)
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    rules.append(
        TGD(
            [Atom(last_rel, [x, y]), Atom(last_mark, [y])],
            [Atom(first_rel, [y, z]), Atom(first_mark, [z])],
            label="close",
        )
    )
    return rules


def dl_lite_family(concepts: int) -> List[TGD]:
    """A DL-Lite-style ontology: concept inclusions and mandatory-role
    axioms over ``concepts`` concepts (the SL application the paper
    highlights — inclusion dependencies / DL-Lite are simple linear).

    ``Ci ⊑ ∃role_i``, ``∃role_i⁻ ⊑ C(i+1)``: terminating because the
    concept chain never closes.
    """
    if concepts < 2:
        raise ValueError("concepts must be >= 2")
    rules: List[TGD] = []
    x, y = Variable("X"), Variable("Y")
    for i in range(concepts - 1):
        concept = Predicate(f"c{i + 1}", 1)
        role = Predicate(f"role{i + 1}", 2)
        nxt = Predicate(f"c{i + 2}", 1)
        rules.append(
            TGD([Atom(concept, [x])], [Atom(role, [x, y])],
                label=f"mandatory{i + 1}")
        )
        rules.append(
            TGD([Atom(role, [x, y])], [Atom(nxt, [y])],
                label=f"range{i + 1}")
        )
    return rules


def dl_lite_cyclic_family(concepts: int) -> List[TGD]:
    """The DL-Lite chain closed into a cycle — the textbook infinite
    ontology chase (Example 1's person/hasFather generalized)."""
    rules = dl_lite_family(concepts)
    last = Predicate(f"c{concepts}", 1)
    role = Predicate(f"role{concepts}", 2)
    first = Predicate("c1", 1)
    x, y = Variable("X"), Variable("Y")
    rules.append(
        TGD([Atom(last, [x])], [Atom(role, [x, y])], label="mandatory_last")
    )
    rules.append(
        TGD([Atom(role, [x, y])], [Atom(first, [y])], label="range_last")
    )
    return rules
