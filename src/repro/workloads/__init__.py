"""Seeded generators and parametric families for tests and benchmarks."""

from .families import (
    chain_family,
    cycle_family,
    diagonal_family,
    dl_lite_cyclic_family,
    dl_lite_family,
    guarded_loop_family,
    guarded_tower_family,
    shifting_family,
)
from .generators import (
    random_database,
    random_guarded,
    random_linear,
    random_simple_linear,
)

__all__ = [
    "chain_family",
    "cycle_family",
    "diagonal_family",
    "dl_lite_cyclic_family",
    "dl_lite_family",
    "guarded_loop_family",
    "guarded_tower_family",
    "random_database",
    "random_guarded",
    "random_linear",
    "random_simple_linear",
    "shifting_family",
]
