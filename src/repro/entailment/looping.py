"""The looping operator — entailment ⟶ co-(chase termination).

The paper's lower bounds (Theorems 3 and 4) all factor through one
"generic technique, called the looping operator, [which] allows us to
obtain lower bounds for the chase termination problem in a uniform
way: a generic reduction from propositional atom entailment to the
complement of chase termination."

Given an entailment instance — a guarded, terminating rule set Σ, a
database D, and a 0-ary goal predicate ``p`` — the operator produces a
guarded rule set ``loop(Σ, D, p)`` whose chase behaves as follows on
*standard* databases (Theorem 4's setting):

1. any standard database kicks off a **run**: a fresh tag ``T`` plus a
   fresh copy of D's constants, laid out by a single guarded rule;
2. D's facts are rebuilt over the fresh constants, tagged with ``T``,
   and a tagged copy ``Σ̂`` of Σ reasons over them;
3. if the run derives the goal ``p̂(T)``, a **restart** rule fires,
   creating a brand-new tag and re-running the whole simulation.

Hence: D ∧ Σ ⊨ p ⇒ every run rederives the goal and restarts forever —
the chase diverges on the minimal standard database, so
``loop(Σ,D,p) ∉ CT``.  Conversely if D ∧ Σ ⊭ p, every run (including
runs seeded by adversarial "junk" database atoms, which can fake at
most finitely many restarts — each restart rule key fires once) fails
to rederive the goal, and since Σ itself is terminating the whole
chase terminates on every database: ``loop(Σ,D,p) ∈ CT``.

The *tagging* is what defeats junk: the goal must be derived **with
the current run's tag**, so a planted 0-ary goal cannot refuel the
restart loop.  Tagging preserves guardedness (the original guard plus
the shared tag variable still guards) and linearity.

Preconditions (checked): Σ guarded, goal 0-ary, and — for the ⇐
direction — Σ ∈ CT for the chase variant of interest (the paper
applies the operator to terminating-by-construction simulations; pass
``check_termination=False`` to skip the check).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..chase.critical import ZERO_PREDICATE
from ..classes import is_guarded
from ..errors import UnsupportedClassError
from ..model import (
    Atom,
    Constant,
    Instance,
    Predicate,
    TGD,
    Variable,
    validate_program,
)

TAG_SUFFIX = "__t"
RUN_PREDICATE = Predicate("loop_run", 1)
SUCC_PREDICATE = Predicate("loop_succ", 2)


class LoopingProgram:
    """The output of the looping operator.

    ``rules`` is the transformed program; ``goal`` the tagged goal
    predicate; ``dom_predicate`` the layout predicate carrying the
    per-run copy of D's constants.
    """

    __slots__ = ("rules", "goal", "dom_predicate", "constants")

    def __init__(
        self,
        rules: List[TGD],
        goal: Predicate,
        dom_predicate: Predicate,
        constants: Tuple[Constant, ...],
    ):
        self.rules = rules
        self.goal = goal
        self.dom_predicate = dom_predicate
        self.constants = constants

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)


def tag_predicate(predicate: Predicate) -> Predicate:
    """The tagged variant ``R̂``: one extra leading tag position."""
    return Predicate(predicate.name + TAG_SUFFIX, predicate.arity + 1)


def tag_atom(atom: Atom, tag: Variable) -> Atom:
    """``R(t̄) ↦ R̂(tag, t̄)``."""
    return Atom(tag_predicate(atom.predicate), (tag,) + atom.terms)


def tag_rule(rule: TGD, tag_name: str = "LoopTag") -> TGD:
    """Tag every atom of ``rule`` with one shared tag variable.

    Preserves guardedness (the original guard atom, extended with the
    tag shared by all atoms, still covers all body variables) and
    linearity (atom counts are unchanged).
    """
    tag = Variable(tag_name)
    if tag in rule.body_variables | rule.head_variables:
        tag = Variable(tag_name + "_0")
    return TGD(
        [tag_atom(a, tag) for a in rule.body],
        [tag_atom(a, tag) for a in rule.head],
        label=(rule.label + TAG_SUFFIX) if rule.label else "",
    )


def looping_operator(
    rules: Sequence[TGD],
    database: Instance,
    goal: Predicate,
    check_termination: bool = True,
    variant: str = "semi_oblivious",
    order_policy: str = "cost",
) -> LoopingProgram:
    """Apply the looping operator to the entailment instance
    ``(rules, database, goal)``.

    Returns a guarded program Σ' with: Σ' ∈ CT_variant (over standard
    databases)  ⇔  database ∧ rules ⊭ goal.

    The ``check_termination`` precondition runs the guarded decider's
    type saturation, whose pattern joins are ordered by the cost-based
    planner; ``order_policy`` selects the planner policy
    (:data:`repro.query.planner.ORDER_POLICIES`) — the check's verdict
    is policy-independent.
    """
    rules = list(rules)
    validate_program(rules)
    if goal.arity != 0:
        raise UnsupportedClassError(
            f"the looping operator reduces *propositional* atom "
            f"entailment; goal {goal} is not 0-ary"
        )
    if not is_guarded(rules):
        raise UnsupportedClassError(
            "the looping operator requires guarded rules"
        )
    if database.nulls():
        raise ValueError("the looping operator needs a null-free database")
    if check_termination:
        from ..termination import decide_termination

        if not decide_termination(
            rules, variant=variant, order_policy=order_policy
        ).terminating:
            raise UnsupportedClassError(
                "the looping operator requires a terminating base program "
                "(otherwise the reduction is vacuous); pass "
                "check_termination=False to override"
            )

    constants: Tuple[Constant, ...] = tuple(sorted(database.constants()))
    k = len(constants)
    dom_predicate = Predicate("loop_dom", 1 + k)
    constant_var: Dict[Constant, Variable] = {
        c: Variable(f"C{i + 1}") for i, c in enumerate(constants)
    }
    tag = Variable("T")
    dom_atom = Atom(
        dom_predicate, (tag,) + tuple(constant_var[c] for c in constants)
    )

    out: List[TGD] = []
    # (1) Every standard database starts a run.
    start_var = Variable("X")
    out.append(
        TGD(
            [Atom(ZERO_PREDICATE, [start_var])],
            [Atom(RUN_PREDICATE, [tag])],
            label="loop_start",
        )
    )
    # (2) A run lays out a fresh copy of D's constants.
    out.append(
        TGD(
            [Atom(RUN_PREDICATE, [tag])],
            [dom_atom],
            label="loop_layout",
        )
    )
    # (3) D's facts, rebuilt over the copied constants, tagged.
    for index, fact in enumerate(sorted(database, key=str)):
        head = Atom(
            tag_predicate(fact.predicate),
            (tag,) + tuple(constant_var[t] for t in fact.terms),
        )
        out.append(TGD([dom_atom], [head], label=f"loop_fact{index + 1}"))
    # (4) The tagged copy of Σ.
    for rule in rules:
        out.append(tag_rule(rule))
    # (5) The restart: a derived (tagged) goal relaunches the run with
    # a fresh tag.  The successor atom keeps the old tag in the
    # frontier so every restart is a genuinely new trigger for both
    # the oblivious and the semi-oblivious chase.
    goal_tagged = tag_predicate(goal)
    new_tag = Variable("T2")
    out.append(
        TGD(
            [Atom(goal_tagged, [tag]), dom_atom],
            [
                Atom(RUN_PREDICATE, [new_tag]),
                Atom(SUCC_PREDICATE, [tag, new_tag]),
            ],
            label="loop_restart",
        )
    )
    return LoopingProgram(out, goal_tagged, dom_predicate, constants)
