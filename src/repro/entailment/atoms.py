"""Atom entailment under guarded TGDs.

``D ∧ Σ ⊨ a`` for a ground atom ``a`` holds iff ``a`` belongs to every
model of D and Σ, equivalently iff the chase derives ``a``.  The chase
may be infinite, but for *guarded* Σ the atoms derivable over the
database constants are computed by the same type-saturation fixpoint
that powers the Theorem 4 decider — rooted at D instead of the
critical instance (local closure + up-propagation from child bags is
precisely how the guarded chase populates the database's terms).

The paper's lower bounds reduce *propositional* (0-ary) atom
entailment to the complement of chase termination through the looping
operator (:mod:`repro.entailment.looping`); this module provides the
entailment side of that reduction, and doubles as a general-purpose
guarded reasoner.
"""

from __future__ import annotations

from typing import Sequence

from ..model import Atom, Database, Instance, TGD
from ..termination.saturation import DEFAULT_MAX_TYPES, TypeAnalysis


def entails_atom(
    rules: Sequence[TGD],
    database: Instance,
    atom: Atom,
    max_types: int = DEFAULT_MAX_TYPES,
    order_policy: str = "cost",
    budget=None,
) -> bool:
    """Decide ``database ∧ rules ⊨ atom`` for guarded ``rules``.

    ``atom`` must be ground and over the database/program constants —
    entailment of atoms mentioning unknown constants is vacuously
    false, and this function returns False for them.

    The saturation fixpoint's body-vs-cloud joins run through the
    cost-based planner (:mod:`repro.query.planner`); ``order_policy``
    selects the ordering policy (``"heuristic"`` is the retained PR 1
    ordering — same verdicts, kept selectable for the equivalence
    cross-checks and the benchmark baseline).
    """
    if not atom.is_ground():
        raise ValueError(f"entailment is defined for ground atoms, got {atom}")
    if atom.nulls():
        raise ValueError(f"entailment queries must be null-free, got {atom}")
    analysis = TypeAnalysis(
        rules, database=database, max_types=max_types,
        order_policy=order_policy, budget=budget,
    )
    # close() on every exit path — an exception (budget trip, bad
    # input) must not strand an executor pool the analysis created.
    try:
        if atom.predicate not in analysis.schema:
            return False
        try:
            classes = tuple(analysis.constant_class[t] for t in atom.terms)
        except KeyError:
            return False
        analysis.saturate()
        return (
            (atom.predicate, classes)
            in analysis.saturated_cloud(analysis.root)
        )
    finally:
        analysis.close()


def saturated_facts(
    rules: Sequence[TGD],
    database: Instance,
    max_types: int = DEFAULT_MAX_TYPES,
    order_policy: str = "cost",
    budget=None,
) -> Database:
    """All facts over the database's constants entailed by D ∧ Σ.

    This is the restriction of the (possibly infinite) chase to the
    original constants — finite and exactly computable for guarded Σ.
    """
    analysis = TypeAnalysis(
        rules, database=database, max_types=max_types,
        order_policy=order_policy, budget=budget,
    )
    try:
        analysis.saturate()
        out = Database()
        for pred, classes in analysis.saturated_cloud(analysis.root):
            out.add(Atom(pred, [analysis.constants[c] for c in classes]))
        return out
    finally:
        analysis.close()
