"""Guarded atom entailment and the looping-operator reduction."""

from .atoms import entails_atom, saturated_facts
from .looping import (
    LoopingProgram,
    RUN_PREDICATE,
    SUCC_PREDICATE,
    TAG_SUFFIX,
    looping_operator,
    tag_atom,
    tag_predicate,
    tag_rule,
)

__all__ = [
    "LoopingProgram",
    "RUN_PREDICATE",
    "SUCC_PREDICATE",
    "TAG_SUFFIX",
    "entails_atom",
    "looping_operator",
    "saturated_facts",
    "tag_atom",
    "tag_predicate",
    "tag_rule",
]
