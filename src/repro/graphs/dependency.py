"""Dependency graphs and the weak/rich acyclicity tests (§3.1).

* The **dependency graph** of Fagin, Kolaitis, Miller & Popa: vertices
  are the positions of the schema; for every TGD and every *frontier*
  variable ``x`` at body position ``p``:

  - a *regular* edge ``p -> q`` for every head position ``q`` of ``x``;
  - a *special* edge ``p => q`` for every head position ``q`` of every
    existential variable.

  **Weak acyclicity** (WA): no cycle goes through a special edge.

* The **extended dependency graph** of Hernich & Schweikardt differs in
  the special edges only: they start from the body positions of *every*
  universally quantified variable, not just frontier variables.

  **Rich acyclicity** (RA): no cycle of the extended graph goes through
  a special edge.  Since the extended graph has a superset of edges,
  RA ⊆ WA — exactly the inclusion the paper states.

Both tests return an optional :class:`DangerousCycle` witness; the
termination theorems for SL consume these directly (Theorem 1).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..model import Position, TGD
from .digraph import Digraph, Edge


class EdgeKind:
    """Edge labels of the (extended) dependency graph."""

    REGULAR = "regular"
    SPECIAL = "special"


class DependencyEdgeLabel:
    """Provenance of one dependency-graph edge: kind + originating rule."""

    __slots__ = ("kind", "rule")

    def __init__(self, kind: str, rule: TGD):
        self.kind = kind
        self.rule = rule

    def __repr__(self) -> str:
        return f"DependencyEdgeLabel({self.kind}, {self.rule})"


class DangerousCycle:
    """A cycle through at least one special edge — a WA/RA violation.

    ``edges`` is the cycle's edge list (target of the last edge equals
    the source of the first); ``special`` is one special edge on it.
    """

    __slots__ = ("edges", "special")

    def __init__(self, edges: Sequence[Edge], special: Edge):
        self.edges = tuple(edges)
        self.special = special

    def positions(self) -> Tuple[Position, ...]:
        """The positions visited by the cycle, in order."""
        return tuple(e.source for e in self.edges)

    def rules(self) -> Tuple[TGD, ...]:
        """The rules contributing the cycle's edges, in order."""
        return tuple(e.label.rule for e in self.edges)

    def __repr__(self) -> str:
        steps = " -> ".join(str(p) for p in self.positions())
        return f"DangerousCycle({steps} -> {self.edges[0].source})"


def dependency_graph(rules: Iterable[TGD]) -> Digraph:
    """The dependency graph of ``rules`` (weak-acyclicity graph)."""
    return _build(rules, extended=False)


def extended_dependency_graph(rules: Iterable[TGD]) -> Digraph:
    """The extended dependency graph of ``rules`` (rich-acyclicity
    graph)."""
    return _build(rules, extended=True)


def _build(rules: Iterable[TGD], extended: bool) -> Digraph:
    graph: Digraph = Digraph()
    for rule in rules:
        for pred in rule.predicates():
            for pos in pred.positions():
                graph.add_node(pos)
        existential_positions: List[Position] = []
        for var in rule.existential_variables:
            existential_positions.extend(rule.head_positions_of(var))
        for var in sorted(rule.body_variables):
            body_positions = rule.body_positions_of(var)
            in_head = var in rule.frontier
            for p in body_positions:
                if in_head:
                    for q in rule.head_positions_of(var):
                        graph.add_edge(
                            p, q, DependencyEdgeLabel(EdgeKind.REGULAR, rule)
                        )
                if in_head or extended:
                    for q in existential_positions:
                        graph.add_edge(
                            p, q, DependencyEdgeLabel(EdgeKind.SPECIAL, rule)
                        )
    return graph


def find_dangerous_cycle(graph: Digraph) -> Optional[DangerousCycle]:
    """A cycle through a special edge, or ``None`` if none exists.

    A special edge lies on a cycle iff both endpoints are in the same
    strongly connected component; the witness path is completed by a
    BFS inside that component.
    """
    components = graph.strongly_connected_components()
    component_of = {}
    for comp in components:
        for node in comp:
            component_of[node] = frozenset(comp)
    for edge in graph.edges():
        if edge.label.kind != EdgeKind.SPECIAL:
            continue
        comp = component_of.get(edge.source)
        if comp is None or edge.target not in comp:
            continue
        if edge.target == edge.source:
            return DangerousCycle([edge], edge)
        back = graph.shortest_path(edge.target, edge.source, allowed=set(comp))
        if back is not None:
            return DangerousCycle([edge] + back, edge)
    return None


def is_weakly_acyclic(rules: Iterable[TGD]) -> bool:
    """Weak acyclicity test (Fagin et al.)."""
    return find_dangerous_cycle(dependency_graph(rules)) is None


def is_richly_acyclic(rules: Iterable[TGD]) -> bool:
    """Rich acyclicity test (Hernich & Schweikardt)."""
    return find_dangerous_cycle(extended_dependency_graph(rules)) is None


def weak_acyclicity_witness(rules: Iterable[TGD]) -> Optional[DangerousCycle]:
    """The dangerous cycle refuting weak acyclicity, if any."""
    return find_dangerous_cycle(dependency_graph(rules))


def rich_acyclicity_witness(rules: Iterable[TGD]) -> Optional[DangerousCycle]:
    """The dangerous cycle refuting rich acyclicity, if any."""
    return find_dangerous_cycle(extended_dependency_graph(rules))
