"""A minimal directed multigraph with labelled edges.

Self-contained (no third-party dependency) because the acyclicity tests
need only SCC computation and witness-path extraction, and keeping the
graph type local lets edges carry rule provenance for certificates.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

N = TypeVar("N", bound=Hashable)


class Edge(Generic[N]):
    """A directed edge with an opaque label (rule provenance etc.)."""

    __slots__ = ("source", "target", "label")

    def __init__(self, source: N, target: N, label: object = None):
        self.source = source
        self.target = target
        self.label = label

    def __repr__(self) -> str:
        return f"Edge({self.source!r} -> {self.target!r}, {self.label!r})"


class Digraph(Generic[N]):
    """Directed multigraph with deterministic iteration order."""

    def __init__(self) -> None:
        self._succ: Dict[N, List[Edge[N]]] = {}
        self._nodes: Dict[N, None] = {}

    def add_node(self, node: N) -> None:
        if node not in self._nodes:
            self._nodes[node] = None
            self._succ.setdefault(node, [])

    def add_edge(self, source: N, target: N, label: object = None) -> Edge[N]:
        self.add_node(source)
        self.add_node(target)
        edge = Edge(source, target, label)
        self._succ[source].append(edge)
        return edge

    def nodes(self) -> Tuple[N, ...]:
        return tuple(self._nodes)

    def edges(self) -> Iterator[Edge[N]]:
        for out in self._succ.values():
            yield from out

    def out_edges(self, node: N) -> Tuple[Edge[N], ...]:
        return tuple(self._succ.get(node, ()))

    def successors(self, node: N) -> Tuple[N, ...]:
        return tuple(e.target for e in self._succ.get(node, ()))

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- algorithms ----------------------------------------------------------

    def strongly_connected_components(self) -> List[Set[N]]:
        """Tarjan's algorithm, iterative (safe for deep graphs)."""
        index: Dict[N, int] = {}
        lowlink: Dict[N, int] = {}
        on_stack: Set[N] = set()
        stack: List[N] = []
        components: List[Set[N]] = []
        counter = 0

        for root in self._nodes:
            if root in index:
                continue
            work: List[Tuple[N, int]] = [(root, 0)]
            while work:
                node, edge_idx = work.pop()
                if edge_idx == 0:
                    index[node] = counter
                    lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                out = self._succ.get(node, [])
                for i in range(edge_idx, len(out)):
                    child = out[i].target
                    if child not in index:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component: Set[N] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    def shortest_path(
        self,
        source: N,
        target: N,
        allowed: Optional[Set[N]] = None,
    ) -> Optional[List[Edge[N]]]:
        """BFS edge-path from ``source`` to ``target`` restricted to the
        ``allowed`` node set (both endpoints must be allowed)."""
        if allowed is not None and (source not in allowed or target not in allowed):
            return None
        parents: Dict[N, Edge[N]] = {}
        seen: Set[N] = {source}
        queue: deque = deque([source])
        while queue:
            node = queue.popleft()
            for edge in self._succ.get(node, ()):
                child = edge.target
                if allowed is not None and child not in allowed:
                    continue
                if child == target:
                    path = [edge]
                    back = node
                    while back != source:
                        prev = parents[back]
                        path.append(prev)
                        back = prev.source
                    path.reverse()
                    return path
                if child not in seen:
                    seen.add(child)
                    parents[child] = edge
                    queue.append(child)
        return None

    def reachable_from(self, sources: Iterable[N]) -> Set[N]:
        """All nodes reachable from ``sources`` (inclusive)."""
        seen: Set[N] = set()
        queue: deque = deque()
        for node in sources:
            if node in self._nodes and node not in seen:
                seen.add(node)
                queue.append(node)
        while queue:
            node = queue.popleft()
            for edge in self._succ.get(node, ()):
                if edge.target not in seen:
                    seen.add(edge.target)
                    queue.append(edge.target)
        return seen
