"""Joint acyclicity — a sufficient condition strictly between weak
acyclicity and the exact deciders.

Krötzsch & Rudolph (IJCAI 2011) track, per *existential variable* z,
the set ``Mov(z)`` of positions that nulls invented for z can ever
reach, and build the **existential dependency graph**: an edge
``z ⇝ z'`` when nulls of z can participate in a body match of the rule
inventing z'.  Joint acyclicity (JA) asks this graph to be acyclic.

JA refines weak acyclicity (WA ⊆ JA ⊆ CT_so): WA merges all
existential variables of a position, JA follows each one separately.
The paper's introduction cites this line of work ("identifying
syntactic properties such that the termination of the chase is
guaranteed"); the ablation benchmark E11 measures how much precision
each condition gives up against the exact Theorem 2/4 deciders.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..model import Position, TGD
from .digraph import Digraph

ExistentialId = Tuple[int, str]
"""(rule index, variable name) — existential variables, rules renamed
apart implicitly by indexing."""


def movement_sets(
    rules: Sequence[TGD],
) -> Dict[ExistentialId, FrozenSet[Position]]:
    """``Mov(z)`` for every existential variable z of ``rules``.

    ``Mov(z)`` is the least set containing z's head positions and
    closed under rule transfer: whenever every body position of a
    universal variable x lies in ``Mov(z)``, x's head positions join
    ``Mov(z)`` (a z-null bound to x propagates wherever x goes).
    """
    transfers: List[Tuple[FrozenSet[Position], FrozenSet[Position]]] = []
    for rule in rules:
        for var in rule.frontier:
            body = frozenset(rule.body_positions_of(var))
            head = frozenset(rule.head_positions_of(var))
            if body:
                transfers.append((body, head))
    out: Dict[ExistentialId, FrozenSet[Position]] = {}
    for index, rule in enumerate(rules):
        for var in sorted(rule.existential_variables):
            moved: Set[Position] = set(rule.head_positions_of(var))
            changed = True
            while changed:
                changed = False
                for body, head in transfers:
                    if body <= moved and not head <= moved:
                        moved |= head
                        changed = True
            out[(index, var.name)] = frozenset(moved)
    return out


def existential_dependency_graph(rules: Sequence[TGD]) -> Digraph:
    """The JA graph: nodes are existential variables, ``z ❝ z'`` when
    some universal variable of z'-inventing rule can be bound entirely
    inside ``Mov(z)``."""
    rules = list(rules)
    movements = movement_sets(rules)
    graph: Digraph = Digraph()
    for node in movements:
        graph.add_node(node)
    for source, moved in movements.items():
        for index, rule in enumerate(rules):
            if not rule.existential_variables:
                continue
            # Only *frontier* variables matter: a z-null entering a
            # body position of a variable absent from the head leaves
            # the semi-oblivious trigger key unchanged, so it cannot
            # cause a genuinely new z'-invention.
            reachable = False
            for var in sorted(rule.frontier):
                body = rule.body_positions_of(var)
                if body and all(pos in moved for pos in body):
                    reachable = True
                    break
            if not reachable:
                continue
            for var in sorted(rule.existential_variables):
                graph.add_edge(source, (index, var.name), label=rule)
    return graph


def is_jointly_acyclic(rules: Sequence[TGD]) -> bool:
    """Joint acyclicity: the existential dependency graph has no cycle."""
    graph = existential_dependency_graph(list(rules))
    for component in graph.strongly_connected_components():
        if len(component) > 1:
            return False
        (node,) = component
        if any(edge.target == node for edge in graph.out_edges(node)):
            return False
    return True


def joint_acyclicity_witness(
    rules: Sequence[TGD],
) -> Optional[List[ExistentialId]]:
    """A cycle of existential variables refuting JA, or ``None``."""
    graph = existential_dependency_graph(list(rules))
    for component in graph.strongly_connected_components():
        nodes = sorted(component)
        if len(component) > 1:
            return nodes
        (node,) = component
        if any(edge.target == node for edge in graph.out_edges(node)):
            return [node]
    return None
