"""Graphviz DOT export for the library's graphs.

Pure string builders (no graphviz dependency): feed the output to
``dot -Tsvg`` to visualise dependency graphs, JA graphs, and the
guarded type-transition graph behind a termination verdict.
"""

from __future__ import annotations


from .dependency import EdgeKind
from .digraph import Digraph


def _quote(text: object) -> str:
    escaped = str(text).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def dependency_graph_to_dot(graph: Digraph, title: str = "dependency") -> str:
    """DOT for a (extended) dependency graph: special edges dashed red."""
    lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
    for node in graph.nodes():
        lines.append(f"  {_quote(node)};")
    for edge in graph.edges():
        style = ""
        label = getattr(edge.label, "kind", None)
        if label == EdgeKind.SPECIAL:
            style = ' [style=dashed, color=red, label="*"]'
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)}{style};"
        )
    lines.append("}")
    return "\n".join(lines)


def joint_graph_to_dot(graph: Digraph, title: str = "joint") -> str:
    """DOT for the existential dependency graph of joint acyclicity."""
    lines = [f"digraph {_quote(title)} {{"]
    for node in graph.nodes():
        index, var = node
        lines.append(f"  {_quote(f'r{index}:{var}')};")
    for edge in graph.edges():
        src_index, src_var = edge.source
        dst_index, dst_var = edge.target
        lines.append(
            f"  {_quote(f'r{src_index}:{src_var}')} -> "
            f"{_quote(f'r{dst_index}:{dst_var}')};"
        )
    lines.append("}")
    return "\n".join(lines)


def transition_graph_to_dot(graph, title: str = "types") -> str:
    """DOT for a guarded type-transition graph.

    ``graph`` is a :class:`repro.termination.transitions.TransitionGraph`;
    node labels render each bag type's cloud.
    """
    constants = graph.analysis.constants
    ids = {bag: f"t{i}" for i, bag in enumerate(graph.nodes)}
    lines = [f"digraph {_quote(title)} {{", "  node [shape=box];"]
    for bag, node_id in ids.items():
        label = bag.describe(constants)
        if len(label) > 60:
            label = label[:57] + "..."
        shape = ' peripheries=2' if bag == graph.root else ""
        lines.append(f"  {node_id} [label={_quote(label)}{shape}];")
    for bag in graph.nodes:
        for edge in graph.out_edges(bag):
            rule_label = edge.rule.label or f"rule{edge.rule_index}"
            lines.append(
                f"  {ids[edge.source]} -> {ids.get(edge.target, 'missing')}"
                f" [label={_quote(rule_label)}];"
            )
    lines.append("}")
    return "\n".join(lines)
