"""Dependency graphs and acyclicity conditions (weak / rich / joint)."""

from .dependency import (
    DangerousCycle,
    DependencyEdgeLabel,
    EdgeKind,
    dependency_graph,
    extended_dependency_graph,
    find_dangerous_cycle,
    is_richly_acyclic,
    is_weakly_acyclic,
    rich_acyclicity_witness,
    weak_acyclicity_witness,
)
from .digraph import Digraph, Edge
from .dot import (
    dependency_graph_to_dot,
    joint_graph_to_dot,
    transition_graph_to_dot,
)
from .joint import (
    existential_dependency_graph,
    is_jointly_acyclic,
    joint_acyclicity_witness,
    movement_sets,
)

__all__ = [
    "DangerousCycle",
    "DependencyEdgeLabel",
    "Digraph",
    "Edge",
    "EdgeKind",
    "dependency_graph",
    "dependency_graph_to_dot",
    "existential_dependency_graph",
    "extended_dependency_graph",
    "find_dangerous_cycle",
    "is_jointly_acyclic",
    "is_richly_acyclic",
    "is_weakly_acyclic",
    "joint_acyclicity_witness",
    "joint_graph_to_dot",
    "movement_sets",
    "rich_acyclicity_witness",
    "transition_graph_to_dot",
    "weak_acyclicity_witness",
]
