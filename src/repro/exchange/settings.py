"""Data exchange on top of the chase.

The paper motivates the chase through data exchange (Fagin, Kolaitis,
Miller & Popa): a *setting* consists of source-to-target TGDs and
target TGDs; a *solution* for a source database is a target instance
satisfying both; the chase computes a **universal solution** whenever
it terminates — which is exactly what the termination machinery of
this library predicts ahead of time.

This module is the applied face of the library: it glues the chase
engines, the termination deciders, and certain-answer evaluation into
the standard data-exchange workflow.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..chase import ChaseVariant, run_chase
from ..cq import ConjunctiveQuery
from ..errors import ReproError, UnsupportedClassError
from ..model import (
    Database,
    Instance,
    Predicate,
    Schema,
    TGD,
    validate_program,
)
from ..termination import decide_termination


class ExchangeSetting:
    """A data-exchange setting ``(source schema, target schema, Σst, Σt)``.

    ``source_to_target`` rules must have source-only bodies and
    target-only heads; ``target`` rules must be target-only.  Schemas
    are inferred when omitted.
    """

    def __init__(
        self,
        source_to_target: Sequence[TGD],
        target: Sequence[TGD] = (),
        source_schema: Optional[Schema] = None,
        target_schema: Optional[Schema] = None,
    ):
        self.source_to_target = list(source_to_target)
        self.target = list(target)
        validate_program(self.source_to_target + self.target)
        if source_schema is None:
            source_schema = Schema(
                pred
                for rule in self.source_to_target
                for atom in rule.body
                for pred in [atom.predicate]
            )
        if target_schema is None:
            preds: Set[Predicate] = set()
            for rule in self.source_to_target:
                preds |= {a.predicate for a in rule.head}
            for rule in self.target:
                preds |= rule.predicates()
            target_schema = Schema(preds)
        overlap = source_schema.predicate_names() & target_schema.predicate_names()
        if overlap:
            raise ReproError(
                f"source and target schemas overlap on {sorted(overlap)}"
            )
        self.source_schema = source_schema
        self.target_schema = target_schema
        self._validate_rule_shapes()

    def _validate_rule_shapes(self) -> None:
        for rule in self.source_to_target:
            for atom in rule.body:
                if atom.predicate not in self.source_schema:
                    raise ReproError(
                        f"s-t rule body atom {atom} is not over the source "
                        "schema"
                    )
            for atom in rule.head:
                if atom.predicate not in self.target_schema:
                    raise ReproError(
                        f"s-t rule head atom {atom} is not over the target "
                        "schema"
                    )
        for rule in self.target:
            for atom in rule.body + rule.head:
                if atom.predicate not in self.target_schema:
                    raise ReproError(
                        f"target rule atom {atom} is not over the target "
                        "schema"
                    )

    # -- analysis ---------------------------------------------------------

    def rules(self) -> List[TGD]:
        """All rules of the setting (s-t first, then target)."""
        return self.source_to_target + self.target

    def guarantees_termination(
        self, variant: str = ChaseVariant.SEMI_OBLIVIOUS
    ) -> bool:
        """Does the ``variant`` chase terminate for every source DB?

        Source-to-target rules fire only on source facts (their bodies
        are source-only and their heads target-only), so all-instance
        termination of the whole setting reduces to all-instance
        termination of the *target* rules — decided by the library when
        they are guarded, and by weak/rich acyclicity as a sufficient
        fallback otherwise.
        """
        if not self.target:
            return True
        try:
            return decide_termination(self.target, variant=variant).terminating
        except UnsupportedClassError:
            from ..graphs import is_richly_acyclic, is_weakly_acyclic

            if variant == ChaseVariant.OBLIVIOUS:
                return is_richly_acyclic(self.target)
            return is_weakly_acyclic(self.target)

    # -- solving -----------------------------------------------------------

    def solve(
        self,
        source: Database,
        variant: str = ChaseVariant.RESTRICTED,
        max_steps: int = 10_000,
    ) -> Instance:
        """Chase ``source`` into a universal solution.

        Raises :class:`ReproError` if the budget is exhausted before a
        fixpoint (call :meth:`guarantees_termination` first to know
        this cannot happen).  The returned instance is restricted to
        the target schema.
        """
        for fact in source:
            if fact.predicate not in self.source_schema:
                raise ReproError(
                    f"source fact {fact} is not over the source schema"
                )
        result = run_chase(source, self.rules(), variant, max_steps=max_steps)
        if not result.terminated:
            raise ReproError(
                f"chase exhausted its budget of {max_steps} steps without "
                "reaching a fixpoint; the setting may be non-terminating"
            )
        solution = Instance(
            fact
            for fact in result.instance
            if fact.predicate in self.target_schema
        )
        return solution

    def certain_answers(
        self,
        source: Database,
        query: ConjunctiveQuery,
        variant: str = ChaseVariant.RESTRICTED,
        max_steps: int = 10_000,
    ) -> List:
        """Certain answers of a target query via the universal solution."""
        return query.certain_answers(self.solve(source, variant, max_steps))
