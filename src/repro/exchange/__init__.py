"""Data exchange settings solved by the chase."""

from .settings import ExchangeSetting

__all__ = ["ExchangeSetting"]
