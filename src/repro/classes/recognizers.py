"""Recognizers for the syntactic TGD classes studied by the paper.

The classes form the hierarchy  SL ⊆ L ⊆ G  (simple linear, linear,
guarded — §3 of the paper), plus the orthogonal properties *full* (no
existentials) and *single-head* (at most one head atom per rule /
each predicate in the head of at most one rule, per §4).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

from ..model import TGD


def is_linear(rules: Iterable[TGD]) -> bool:
    """True iff every rule's body is a single atom (class L)."""
    return all(rule.is_linear() for rule in rules)


def is_simple_linear(rules: Iterable[TGD]) -> bool:
    """True iff linear with no repeated body variables (class SL)."""
    return all(rule.is_simple_linear() for rule in rules)


def is_guarded(rules: Iterable[TGD]) -> bool:
    """True iff every rule has a guard atom covering all body variables
    (class G).  Linear rules are trivially guarded."""
    return all(rule.is_guarded() for rule in rules)


def is_full(rules: Iterable[TGD]) -> bool:
    """True iff no rule has existential variables.  Full programs are
    always terminating (for every chase variant)."""
    return all(rule.is_full() for rule in rules)


def is_single_head(rules: Iterable[TGD]) -> bool:
    """True iff every rule's head is a single atom."""
    return all(rule.is_single_head() for rule in rules)


def is_single_head_per_predicate(rules: Sequence[TGD]) -> bool:
    """The §4 condition: each predicate appears in the head of at most
    one TGD (and heads are single atoms)."""
    if not is_single_head(rules):
        return False
    counts: Counter = Counter()
    for rule in rules:
        counts[rule.head[0].predicate] += 1
    return all(count <= 1 for count in counts.values())


def classify(rules: Sequence[TGD]) -> Dict[str, bool]:
    """A report of every recognized class membership for ``rules``."""
    return {
        "simple_linear": is_simple_linear(rules),
        "linear": is_linear(rules),
        "guarded": is_guarded(rules),
        "full": is_full(rules),
        "single_head": is_single_head(rules),
        "single_head_per_predicate": is_single_head_per_predicate(rules),
    }


def narrowest_class(rules: Sequence[TGD]) -> str:
    """The most specific class along SL ⊆ L ⊆ G, or ``"general"``."""
    if is_simple_linear(rules):
        return "simple_linear"
    if is_linear(rules):
        return "linear"
    if is_guarded(rules):
        return "guarded"
    return "general"


def offending_rules(rules: Sequence[TGD], cls: str) -> List[TGD]:
    """The rules violating membership in ``cls`` (one of
    ``simple_linear``, ``linear``, ``guarded``, ``full``,
    ``single_head``).  Useful for authoring diagnostics."""
    predicate = {
        "simple_linear": TGD.is_simple_linear,
        "linear": TGD.is_linear,
        "guarded": TGD.is_guarded,
        "full": TGD.is_full,
        "single_head": TGD.is_single_head,
    }.get(cls)
    if predicate is None:
        raise ValueError(f"unknown class {cls!r}")
    return [rule for rule in rules if not predicate(rule)]
