"""Syntactic class recognizers: SL ⊆ L ⊆ G and friends."""

from .recognizers import (
    classify,
    is_full,
    is_guarded,
    is_linear,
    is_simple_linear,
    is_single_head,
    is_single_head_per_predicate,
    narrowest_class,
    offending_rules,
)

__all__ = [
    "classify",
    "is_full",
    "is_guarded",
    "is_linear",
    "is_simple_linear",
    "is_single_head",
    "is_single_head_per_predicate",
    "narrowest_class",
    "offending_rules",
]
