"""Setuptools shim for environments whose tooling predates PEP 660.

``pip install -e .`` with modern pip/setuptools/wheel uses
pyproject.toml directly; this file only enables legacy editable
installs (``pip install -e . --no-build-isolation --no-use-pep517``)
on offline machines without the ``wheel`` package.
"""

from setuptools import setup

setup()
