#!/usr/bin/env python
"""Chase-as-a-service: start a server, query it, ingest a delta.

Walks the full `repro.serve` loop in one process:

1. chase a small org database to a universal model and keep it
   *resident* in a :class:`repro.chase.incremental.ChaseSession`;
2. serve it over HTTP on a background thread
   (:func:`repro.serve.serve_background`) and fire concurrent
   certain-answer queries plus an entailment probe at it;
3. ``POST /facts`` a delta of new base facts — the server resumes the
   chase **from the delta only** (incremental maintenance, never a
   re-chase) — and watch the watermark advance and new answers appear,
   while a reader pinned to the old snapshot keeps its consistent
   view.

Everything is stdlib: the client below is plain ``http.client``.

Run:  PYTHONPATH=src python examples/serve_queries.py
"""

import http.client
import json
import threading

from repro.chase.incremental import ChaseSession
from repro.parser import parse_database, parse_program
from repro.serve import ChaseService, serve_background

RULES = parse_program(
    """
    % every department an employee works in has some manager
    emp(X, D) -> exists M . mgr(D, M)
    % employees report to their department's manager, transitively
    mgr(D, M), emp(E, D) -> rep(E, M)
    rep(E, M), rep(M, T) -> rep(E, T)
    % two employees with a common manager are peers
    rep(E, M), rep(F, M) -> peer(E, F)
    """
)

DATABASE = parse_database(
    """
    emp(ann, sales)
    emp(bob, sales)
    """
)


def call(port, method, path, body=None):
    """One JSON request against the server; returns (status, payload)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            method, path,
            body=None if body is None else json.dumps(body),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def main() -> None:
    # 1. Chase once; the session stays resident and extendable.
    session = ChaseSession.start(DATABASE, RULES, variant="semi_oblivious")
    assert session.terminated

    service = ChaseService(request_timeout_s=30.0)
    service.add_session("default", session)

    # 2. Serve on a daemon thread; port 0 = pick a free port.
    with serve_background(service, port=0) as server:
        _, port = server.address
        print(f"serving on http://127.0.0.1:{port}")

        # Concurrent readers: each request pins a consistent snapshot.
        def ask(query, out, certain=True):
            status, payload = call(port, "POST", "/query",
                                   {"query": query, "certain": certain})
            assert status == 200, payload
            out.append(payload)

        results = []
        threads = [
            threading.Thread(
                target=ask, args=("q(E, F) :- peer(E, F)", results)
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        before = results[0]
        print(f"peers at watermark {before['watermark']}: "
              f"{sorted(before['answers'])}")

        status, verdict = call(port, "POST", "/entail",
                               {"atom": "emp(ann, sales)"})
        print(f"entailed {verdict['atom']}? {verdict['entailed']}")

        # 3. Ingest a delta: the chase resumes from these two facts
        # only — the ingest leg's step count covers just their
        # consequences, and a fresh snapshot is published atomically.
        status, ingested = call(port, "POST", "/facts", {
            "facts": ["emp(cam, ops)", "emp(dee, ops)"],
        })
        assert status == 200, ingested
        print(f"delta added {ingested['new_facts']} facts "
              f"(2 base + their consequences) in "
              f"{ingested['new_steps']} incremental chase steps, "
              f"watermark {before['watermark']} -> "
              f"{ingested['watermark']}, "
              f"terminated={ingested['terminated']}")

        status, after = call(port, "POST", "/query",
                             {"query": "q(E, F) :- peer(E, F)",
                              "certain": True})
        new = sorted(set(after["answers"]) - set(before["answers"]))
        print(f"peers at watermark {after['watermark']}: "
              f"+{len(new)} new: {new}")

        status, stats = call(port, "GET", "/stats")
        resident = stats["residents"]["default"]
        print(f"served {resident['queries']} queries, "
              f"{resident['ingests']} ingest legs, "
              f"{resident['facts']} facts resident")

    service.close()
    print("server drained, session closed")


if __name__ == "__main__":
    main()
