#!/usr/bin/env python
"""The termination-condition zoo: sufficient conditions vs the paper.

The paper's introduction recalls "a long line of research on
identifying syntactic properties on TGDs such that, for every input
database, the termination of the chase is guaranteed" — and asks for a
condition that is also *necessary*.  This example audits a gallery of
rule sets against the whole ladder:

    RA  ⊆  WA  ⊆  JA  ⊆  MFA  ⊆  CT_so  (exact, Theorems 1/2/4)

showing exactly where each sufficient condition starts lying.

Run:  python examples/condition_zoo.py
"""

from repro import parse_program
from repro.graphs import (
    is_jointly_acyclic,
    is_richly_acyclic,
    is_weakly_acyclic,
)
from repro.termination import decide_termination, is_mfa

GALLERY = [
    ("plain chain",
     "p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(Y)"),
    ("Example 2 (diverges)",
     "p(X, Y) -> exists Z . p(Y, Z)"),
    ("o/so separation",
     "p(X, Y) -> exists Z . p(X, Z)"),
    ("diagonal (Thm 2 star witness)",
     "p(X, X) -> exists Z . p(X, Z)"),
    ("diagonal restored (diverges)",
     "p(X, X) -> exists Z . q(X, Z)\nq(X, Y) -> p(Y, Y)"),
    ("guarded tower",
     "r1(X, Y), m1(Y) -> exists Z . r2(Y, Z), m2(Z)"),
    ("guarded loop (diverges)",
     "g(X, Y), q(Y) -> exists Z . g(Y, Z), q(Z)"),
]


def main() -> None:
    header = ("rule set", "RA", "WA", "JA", "MFA", "exact o", "exact so")
    rows = []
    for name, text in GALLERY:
        rules = parse_program(text)
        rows.append(
            (
                name,
                is_richly_acyclic(rules),
                is_weakly_acyclic(rules),
                is_jointly_acyclic(rules),
                is_mfa(rules),
                decide_termination(rules, variant="oblivious").terminating,
                decide_termination(
                    rules, variant="semi_oblivious"
                ).terminating,
            )
        )

    widths = [max(len(str(r[i])) for r in rows + [header])
              for i in range(len(header))]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*header))
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        print(fmt.format(*(str(c) for c in row)))

    print()
    print("Reading the table:")
    print(" * every True in a left column propagates right (the ladder is")
    print("   a chain of inclusions);")
    print(" * the diagonal row is the paper's Theorem 2 motivation: WA")
    print("   says 'dangerous', the chase never diverges — only the exact")
    print("   (critical-acyclicity) column gets it right at both ends;")
    print(" * the 'exact' columns are decision procedures, not heuristics:")
    print("   that is the paper's contribution.")


if __name__ == "__main__":
    main()
