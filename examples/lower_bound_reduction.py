#!/usr/bin/env python
"""The looping operator: entailment ⟶ co-(chase termination).

The paper's lower bounds (Theorems 3 and 4) all run through one
generic reduction: from propositional atom entailment to the
*complement* of chase termination.  This example applies the library's
looping operator to a tiny access-control policy and shows both
directions of the reduction, decided end-to-end by the Theorem 4
procedure.

Run:  python examples/lower_bound_reduction.py
"""

from repro import Predicate, decide_termination, parse_database, parse_program
from repro.entailment import entails_atom, looping_operator
from repro.parser import parse_atom, rule_to_text


POLICY = """
% Administrators can read and write.
admin(X) -> canRead(X)
admin(X) -> canWrite(X)
% Writers on audited systems trip the alert.
canWrite(X), audited(X) -> alert()
"""


def show_case(title: str, data: str) -> None:
    rules = parse_program(POLICY)
    database = parse_database(data)
    goal = Predicate("alert", 0)
    entailed = entails_atom(rules, database, parse_atom("alert()"))

    print("=" * 72)
    print(title)
    print("=" * 72)
    print("database:", ", ".join(sorted(str(f) for f in database)))
    print("alert() entailed?", entailed)

    program = looping_operator(rules, database, goal)
    print(f"\nloop(Σ, D, alert) has {len(program)} rules, e.g.:")
    for rule in program.rules[:3]:
        print("  ", rule_to_text(rule))
    print("   ...")

    verdict = decide_termination(program.rules, variant="semi_oblivious")
    print(f"\nchase termination of loop(Σ, D, alert): "
          f"{'terminating' if verdict.terminating else 'NON-terminating'}")
    print(f"reduction check: entailed={entailed} should equal "
          f"non-terminating={not verdict.terminating}  ->  "
          f"{'OK' if entailed == (not verdict.terminating) else 'MISMATCH'}")
    print()


def main() -> None:
    show_case(
        "Case 1: the alert IS entailed (chase must diverge)",
        """
        admin(root)
        audited(root)
        """,
    )
    show_case(
        "Case 2: the alert is NOT entailed (chase must terminate)",
        """
        admin(root)
        audited(visitor)
        """,
    )
    print("The looping operator turns an entailment question into a")
    print("termination question — this is exactly how the paper derives")
    print("its 2EXPTIME-hardness for guarded chase termination.")


if __name__ == "__main__":
    main()
