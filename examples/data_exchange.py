#!/usr/bin/env python
"""Data exchange: universal solutions and certain answers via the chase.

The classic application from the paper's introduction: migrate a
source database into a target schema under source-to-target and target
TGDs.  The termination deciders tell us *ahead of time* that the
setting is chase-safe for every source database; the chase then
computes a universal solution and certain answers.

Run:  python examples/data_exchange.py
"""

from repro import Variable, parse_database, parse_program
from repro.cq import ConjunctiveQuery
from repro.exchange import ExchangeSetting
from repro.parser import parse_atom


def main() -> None:
    # Source schema: emp(name, dept_name); target: employee, dept, inDept.
    source_to_target = parse_program(
        """
        emp(N, D) -> exists E . employee(E, N), inDept(E, D)
        """
    )
    target = parse_program(
        """
        inDept(E, D) -> dept(D)
        dept(D) -> exists M . manages(M, D)
        manages(M, D) -> exists E . employee(E, M), inDept(E, D)
        """
    )
    setting = ExchangeSetting(source_to_target, target)

    print("setting guarantees termination (semi-oblivious)?",
          setting.guarantees_termination("semi_oblivious"))
    print("setting guarantees termination (restricted engine run)?",
          "checked by solve() below")

    source = parse_database(
        """
        emp(ada, maths)
        emp(alan, computing)
        """
    )
    solution = setting.solve(source)
    print(f"\nuniversal solution ({len(solution)} facts):")
    for fact in sorted(solution, key=str):
        print("  ", fact)

    # Certain answers: which departments certainly exist?
    d = Variable("D")
    query = ConjunctiveQuery([d], [parse_atom("dept(D)")])
    print("\ncertain dept(D) answers:",
          [str(t[0]) for t in setting.certain_answers(source, query)])

    # A query about managers gets no certain answers: every manager the
    # chase invents is a labelled null.
    m = Variable("M")
    query2 = ConjunctiveQuery([m], [parse_atom("manages(M, D)")])
    print("certain manages(M, _) answers:",
          setting.certain_answers(source, query2))

    # But the boolean query "is every dept managed?" is certain.
    query3 = ConjunctiveQuery([], [parse_atom("manages(M, D)")])
    print("boolean 'some manager exists':",
          query3.holds_in(setting.solve(source)))


if __name__ == "__main__":
    main()
