#!/usr/bin/env python
"""Ontology reasoning: termination auditing for DL-Lite-style rules.

The paper notes that simple linear TGDs capture inclusion dependencies
and key description logics such as DL-Lite.  This example models a
small university ontology, audits which chase variants terminate, and
answers queries with the guarded entailment engine when the chase
itself would run forever.

Run:  python examples/ontology_reasoning.py
"""

from repro import decide_termination, parse_database, parse_program
from repro.classes import classify
from repro.entailment import entails_atom, saturated_facts
from repro.parser import parse_atom, rule_to_text


ONTOLOGY = """
% Every professor teaches some course.
professor(X) -> exists C . teaches(X, C)
% Whatever is taught is a course.
teaches(X, C) -> course(C)
% Every course is organized by some department.
course(C) -> exists D . organizedBy(C, D)
% Departments are organizations.
organizedBy(C, D) -> organization(D)
% Every organization has a head, who is a professor.
organization(D) -> exists H . headedBy(D, H)
headedBy(D, H) -> professor(H)
"""

DATA = """
professor(turing)
"""


def main() -> None:
    rules = parse_program(ONTOLOGY)
    database = parse_database(DATA)

    print("ontology:")
    for rule in rules:
        print("  ", rule_to_text(rule))
    print("\nclass membership:", classify(rules))

    print("\ntermination audit:")
    for variant in ("oblivious", "semi_oblivious"):
        verdict = decide_termination(rules, variant=variant)
        outcome = "terminates" if verdict.terminating else "diverges"
        print(f"  {variant:15s}: {outcome}  (method: {verdict.method})")
        if verdict.witness is not None:
            describe = getattr(verdict.witness, "describe", None)
            if callable(describe):
                print("      witness:", describe())

    # The chase diverges (professor -> course -> organization -> professor
    # closes a null-generating loop), but guarded entailment still answers
    # queries over the known individuals exactly.
    print("\nqueries over the (infinite-chase) ontology:")
    for text in (
        "professor(turing)",
        "course(turing)",
        "organization(turing)",
    ):
        atom = parse_atom(text)
        print(f"  entails {text:25s}:",
              entails_atom(rules, database, atom))

    print("\nall derivable facts over the named individuals:")
    for fact in sorted(saturated_facts(rules, database), key=str):
        print("  ", fact)


if __name__ == "__main__":
    main()
