#!/usr/bin/env python
"""Quickstart: parse rules, run chases, decide termination.

Reproduces the two running examples of the paper:

* Example 1 — every person has a father who is a person: the chase
  runs forever, and the deciders prove it without running it.
* Example 2 — ``p(X,Y) → ∃Z p(Y,Z)``: the canonical non-terminating
  single rule.

Run:  python examples/quickstart.py
"""

from repro import (
    decide_termination,
    parse_database,
    parse_program,
    rule_to_text,
    semi_oblivious_chase,
)


def main() -> None:
    print("=" * 72)
    print("Example 1 (paper §1): person(X) -> exists Y . hasFather, person")
    print("=" * 72)
    rules = parse_program(
        "person(X) -> exists Y . hasFather(X, Y), person(Y)"
    )
    for rule in rules:
        print("rule:", rule_to_text(rule))

    database = parse_database("person(bob)")
    result = semi_oblivious_chase(database, rules, max_steps=6)
    print(f"\nchase prefix after {result.step_count} steps "
          f"({'fixpoint' if result.terminated else 'budget exhausted'}):")
    for fact in result.instance:
        print("  ", fact)

    for variant in ("oblivious", "semi_oblivious"):
        verdict = decide_termination(rules, variant=variant)
        print(f"\n{variant}: {verdict.explain()}")

    print()
    print("=" * 72)
    print("Example 2 (paper §2): p(X, Y) -> exists Z . p(Y, Z)")
    print("=" * 72)
    rules2 = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
    for variant in ("oblivious", "semi_oblivious"):
        verdict = decide_termination(rules2, variant=variant)
        print(f"{variant}: {verdict.explain()}")

    print()
    print("=" * 72)
    print("Theorem 2's subtlety: p(X, X) -> exists Z . p(X, Z)")
    print("=" * 72)
    rules3 = parse_program("p(X, X) -> exists Z . p(X, Z)")
    from repro import is_richly_acyclic, is_weakly_acyclic

    print("weakly acyclic:", is_weakly_acyclic(rules3),
          " richly acyclic:", is_richly_acyclic(rules3))
    for variant in ("oblivious", "semi_oblivious"):
        verdict = decide_termination(rules3, variant=variant)
        print(f"{variant}: terminating={verdict.terminating} "
              f"(method: {verdict.method})")
    print("\n=> not weakly acyclic, yet terminating: plain (rich/weak)")
    print("   acyclicity is incomplete for non-simple linear rules, which")
    print("   is why Theorem 2 needs critical acyclicity.")


if __name__ == "__main__":
    main()
