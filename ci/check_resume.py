#!/usr/bin/env python
"""CI checkpoint/kill/resume round-trip.

Builds a small transitive-closure program, chases it uninterrupted in
memory, then re-runs it through the CLI with ``--save`` under a tight
``--max-rounds`` budget so the run is cut off mid-chase (the budget
stop leaves the same on-disk state a kill between checkpoints would),
resumes the store with ``chase --resume``, and finally reopens the
finished store through the API and requires the persisted run to be
**byte-identical** to the uninterrupted one: same facts in the same
order, same trigger keys, same provenance ordinals.

Both interrupted legs go through :func:`repro.cli.main` — the exact
surface a user hits — and the comparison reads back what those legs
wrote to disk.  Exits non-zero on any divergence.

Usage: PYTHONPATH=src python ci/check_resume.py
"""

import contextlib
import io
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.chase import resume_chase, run_chase  # noqa: E402
from repro.cli import main  # noqa: E402
from repro.parser import parse_database, parse_program  # noqa: E402

PROGRAM = """\
e(X, Y) -> p(X, Y)
p(X, Y), e(Y, Z) -> p(X, Z)
p(X, Y) -> exists W . tag(Y, W)
"""

EDGES = 16


def fingerprint(result):
    variant = result.variant
    return (
        result.instance.facts(),
        tuple(step.trigger.key(variant) for step in result.steps),
        tuple(step._ordinals for step in result.steps),
    )


def fail(message):
    print(f"check_resume: FAIL — {message}")
    return 1


def run() -> int:
    database_text = "\n".join(
        f"e(n{i}, n{i + 1})" for i in range(EDGES)
    )
    reference = run_chase(
        parse_database(database_text),
        parse_program(PROGRAM),
        "semi_oblivious",
        max_steps=10_000,
    )
    if not reference.terminated:
        return fail("reference run did not reach fixpoint")

    with tempfile.TemporaryDirectory() as tmp:
        rules_path = os.path.join(tmp, "rules.tgd")
        db_path = os.path.join(tmp, "db.facts")
        store = os.path.join(tmp, "store")
        with open(rules_path, "w") as handle:
            handle.write(PROGRAM)
        with open(db_path, "w") as handle:
            handle.write(database_text + "\n")

        # Leg 1: cut off after two rounds; exit 1 = step_budget stop.
        # The CLI prints whole instances; keep the CI log to verdicts.
        with contextlib.redirect_stdout(io.StringIO()):
            code = main([
                "chase", rules_path, db_path, "--variant", "so",
                "--save", store, "--max-rounds", "2",
            ])
        if code != 1:
            return fail(f"interrupted leg exited {code}, expected 1")

        # Leg 2: a bare resume must finish the run; exit 0 = fixpoint.
        with contextlib.redirect_stdout(io.StringIO()):
            code = main(["chase", "--resume", store])
        if code != 0:
            return fail(f"resume leg exited {code}, expected 0")

        # Read back what the CLI legs persisted and compare.
        persisted = resume_chase(store)
        if not persisted.terminated:
            return fail("persisted store did not record termination")
        if fingerprint(persisted) != fingerprint(reference):
            return fail(
                "resumed run is not byte-identical to the "
                "uninterrupted run"
            )
        print(
            f"check_resume: ok — {persisted.step_count} steps, "
            f"{len(persisted.instance)} facts, interrupted and resumed "
            f"byte-identically"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(run())
