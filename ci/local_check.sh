#!/usr/bin/env bash
# Local dry-run of .github/workflows/ci.yml — same commands, same
# order, on whatever interpreter `python` resolves to.  The lint job
# is skipped (with a warning) when ruff isn't installed; everything
# else is mandatory.  Exits non-zero on the first failure, like CI.
#
# Usage: bash ci/local_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q tests

echo "== tier-1 tests without NumPy (pure-Python kernels) =="
REPRO_NO_NUMPY=1 PYTHONPATH=src python -m pytest -x -q tests

echo "== fault-injection suite =="
PYTHONPATH=src python -m pytest -x -q tests/test_runtime_faults.py

echo "== checkpoint/resume round trip =="
PYTHONPATH=src python ci/check_resume.py

echo "== query-server smoke (incremental ingest over HTTP) =="
PYTHONPATH=src python ci/check_serve.py

echo "== crash-recovery chaos harness (WAL replay round trip) =="
PYTHONPATH=src python ci/check_chaos.py

echo "== bench harness smoke =="
PYTHONPATH=src python -m pytest -x -q benchmarks/test_perf_smoke.py

echo "== bench regression gate =="
PYTHONPATH=src python benchmarks/bench_perf.py \
    --scale 0.25 --check BENCH_chase.json

echo "== lint =="
if command -v ruff >/dev/null 2>&1; then
    ruff check .
else
    echo "ruff not installed; skipping lint (CI will run it)"
fi

echo "ci/local_check.sh: all checks passed"
