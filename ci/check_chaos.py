#!/usr/bin/env python
"""CI service-chaos check: crash-recoverable ingest over HTTP.

Drives ``repro serve --db`` as a real subprocess and kills it at the
worst moments the write-ahead ingest journal exists to survive:

* **crash_ingest** — a deterministic ``os._exit`` after the WAL fsync
  and before the chase leg (the fault-injected version of ``kill -9``
  mid-ingest), on each of the three executors (serial, threaded,
  process).  The restarted server must *replay* the journaled delta,
  answer a retried ``ingest_id`` with ``"replayed": true``, and yield
  certain answers byte-identical to an in-process from-scratch chase
  of the unioned database — and identical across all executors.
* **torn_write** — the journal append writes half its record and the
  process dies; the restart must truncate the torn tail and the retry
  must apply the delta cleanly (as a fresh ingest, not a replay).
* **SIGKILL under slow_accept** — a literal ``kill -9`` landing while
  an admitted ingest is still parked before the WAL write; nothing is
  journaled, so the retry after restart applies the delta exactly
  once.

Every leg finishes with SIGTERM and requires a clean exit 0.

Usage: PYTHONPATH=src python ci/check_chaos.py
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.chase import run_chase  # noqa: E402
from repro.chase.incremental import ChaseSession  # noqa: E402
from repro.parser import (  # noqa: E402
    parse_database,
    parse_fact,
    parse_program,
    parse_query,
)

PROGRAM = """\
e(X, Y) -> p(X, Y)
p(X, Y), e(Y, Z) -> p(X, Z)
p(X, Y) -> exists W . tag(Y, W)
"""

EDGES = 6
DELTA_1 = ["e(n6, n7)", "e(n7, n8)"]
DELTA_2 = ["e(n8, n9)"]
QUERY = "q(X, Y) :- p(X, Y)"

EXECUTORS = [
    ("serial", []),
    ("threaded", ["--workers", "2", "--scheduler", "threaded"]),
    ("process", ["--workers", "2", "--scheduler", "process"]),
]

CRASH_EXIT = 42


def fail(message):
    print(f"check_chaos: FAIL — {message}")
    return 1


def base_facts():
    return [f"e(n{i}, n{i + 1})" for i in range(EDGES)]


def reference_answers(*deltas):
    """Certain answers of a from-scratch chase over the union — the
    ground truth every recovered server must reproduce byte-for-byte."""
    db = parse_database("\n".join(base_facts()))
    for delta in deltas:
        for text in delta:
            db.add(parse_fact(text))
    result = run_chase(db, parse_program(PROGRAM), "semi_oblivious",
                       max_steps=100_000)
    if not result.terminated:
        raise RuntimeError("reference chase did not terminate")
    return sorted(
        "q(" + ", ".join(str(t) for t in row) + ")"
        for row in parse_query(QUERY).certain_answers(result.instance)
    )


def seed_store(path):
    """A checkpointed semi-oblivious store over the base facts."""
    db = parse_database("\n".join(base_facts()))
    session = ChaseSession.start(
        db, parse_program(PROGRAM), variant="semi_oblivious",
        max_steps=100_000, save=path,
    )
    try:
        if not session.terminated:
            raise RuntimeError("seed chase did not terminate")
    finally:
        session.close()


def child_env(faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "..", "src"),
            env.get("PYTHONPATH"),
        ) if p
    )
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


def start_server(store, extra_args, faults=None):
    """Launch ``repro serve --db`` and return (process, port)."""
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--db", store,
         "--port", "0"] + extra_args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=child_env(faults),
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = server.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited during startup (code {server.wait()})"
            )
        if line.startswith("% serving on "):
            return server, int(line.rsplit(":", 1)[1])
    raise RuntimeError("never saw the '% serving on' line")


def request(port, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        return response.status, data
    finally:
        conn.close()


def expect_connection_death(port, body):
    """POST /facts and require the server to die mid-request."""
    try:
        status, data = request(port, "POST", "/facts", body, timeout=60)
    except (ConnectionError, http.client.HTTPException, OSError):
        return None
    return f"expected the server to crash, got {status}: {data}"


def shutdown_clean(server):
    server.send_signal(signal.SIGTERM)
    code = server.wait(timeout=60)
    server.stdout.close()
    if code != 0:
        return f"SIGTERM shutdown exited {code}, expected 0"
    return None


def reap(server, expected_code):
    code = server.wait(timeout=60)
    server.stdout.close()
    if code != expected_code:
        return f"crashed server exited {code}, expected {expected_code}"
    return None


def certain(port):
    status, out = request(port, "POST", "/query",
                          {"query": QUERY, "certain": True})
    if status != 200:
        raise RuntimeError(f"/query returned {status}: {out}")
    return sorted(out["answers"])


def crash_ingest_leg(name, extra_args, expected):
    """kill -9 (via fault injection) between WAL fsync and the chase;
    restart, replay, retry, verify byte-identical answers."""
    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "store")
        seed_store(store)

        server, port = start_server(store, extra_args,
                                    faults="crash_ingest:1")
        error = expect_connection_death(
            port, {"facts": DELTA_1, "ingest_id": "d1"})
        if error:
            server.kill()
            server.wait()
            return error
        error = reap(server, CRASH_EXIT)
        if error:
            return error

        server, port = start_server(store, extra_args)
        try:
            status, health = request(port, "GET", "/health")
            if status != 200 or health.get("status") != "ok":
                return fail_text(f"post-recovery /health: {health}")
            # The journaled delta was replayed at startup, so the
            # retried ingest_id must dedupe to the recorded response.
            status, retry = request(
                port, "POST", "/facts",
                {"facts": DELTA_1, "ingest_id": "d1"})
            if status != 200 or retry.get("replayed") is not True:
                return fail_text(
                    f"retried d1 was not replayed ({status}): {retry}")
            status, second = request(
                port, "POST", "/facts",
                {"facts": DELTA_2, "ingest_id": "d2"})
            if status != 200 or second.get("replayed"):
                return fail_text(
                    f"fresh d2 ingest misbehaved ({status}): {second}")
            got = certain(port)
            if got != expected:
                return fail_text(
                    f"[{name}] recovered answers diverge: "
                    f"{got} != {expected}")
            error = shutdown_clean(server)
            if error:
                return error
            server = None
        finally:
            if server is not None and server.poll() is None:
                server.kill()
                server.wait()
    return None


def torn_write_leg(expected):
    """Half a journal record reaches disk, then the process dies; the
    restart truncates the torn tail and the retry applies cleanly."""
    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "store")
        seed_store(store)

        server, port = start_server(store, [], faults="torn_write")
        error = expect_connection_death(
            port, {"facts": DELTA_1, "ingest_id": "d1"})
        if error:
            server.kill()
            server.wait()
            return error
        error = reap(server, CRASH_EXIT)
        if error:
            return error

        server, port = start_server(store, [])
        try:
            # Nothing durable was acknowledged: the retry is a *fresh*
            # ingest (no replay), applied exactly once.
            status, retry = request(
                port, "POST", "/facts",
                {"facts": DELTA_1, "ingest_id": "d1"})
            if status != 200:
                return fail_text(f"retry after torn write: {retry}")
            if retry.get("replayed"):
                return fail_text(
                    f"torn delta must not replay (it never committed): "
                    f"{retry}")
            got = certain(port)
            if got != expected:
                return fail_text(
                    f"[torn_write] answers diverge: {got} != {expected}")
            error = shutdown_clean(server)
            if error:
                return error
            server = None
        finally:
            if server is not None and server.poll() is None:
                server.kill()
                server.wait()
    return None


def sigkill_leg(expected):
    """A literal kill -9 while the admitted ingest is still parked in
    slow_accept (before the WAL write): nothing journaled, the retry
    applies the delta exactly once."""
    import threading

    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "store")
        seed_store(store)

        server, port = start_server(store, [], faults="slow_accept:30")
        outcome = {}

        def post():
            outcome["error"] = expect_connection_death(
                port, {"facts": DELTA_1, "ingest_id": "d1"})

        poster = threading.Thread(target=post, daemon=True)
        poster.start()
        time.sleep(1.0)  # let the request get admitted and parked
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=60)
        server.stdout.close()
        poster.join(timeout=60)
        if outcome.get("error"):
            return outcome["error"]

        server, port = start_server(store, [])
        try:
            status, retry = request(
                port, "POST", "/facts",
                {"facts": DELTA_1, "ingest_id": "d1"})
            if status != 200 or retry.get("replayed"):
                return fail_text(
                    f"retry after SIGKILL misbehaved ({status}): {retry}")
            got = certain(port)
            if got != expected:
                return fail_text(
                    f"[sigkill] answers diverge: {got} != {expected}")
            error = shutdown_clean(server)
            if error:
                return error
            server = None
        finally:
            if server is not None and server.poll() is None:
                server.kill()
                server.wait()
    return None


def fail_text(message):
    return message


def run() -> int:
    expected_full = reference_answers(DELTA_1, DELTA_2)
    expected_d1 = reference_answers(DELTA_1)

    for name, extra_args in EXECUTORS:
        error = crash_ingest_leg(name, extra_args, expected_full)
        if error:
            return fail(f"[crash_ingest/{name}] {error}")
        print(f"check_chaos: crash_ingest/{name} ok "
              f"({len(expected_full)} certain answers, byte-identical)")

    error = torn_write_leg(expected_d1)
    if error:
        return fail(f"[torn_write] {error}")
    print("check_chaos: torn_write ok (tail truncated, retry applied)")

    error = sigkill_leg(expected_d1)
    if error:
        return fail(f"[sigkill] {error}")
    print("check_chaos: sigkill ok (unjournaled request retried cleanly)")

    print(
        f"check_chaos: ok — journal replay byte-identical on "
        f"{len(EXECUTORS)} executors, torn tail truncated, SIGKILL "
        f"retry idempotent, clean SIGTERM shutdowns"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(run())
