#!/usr/bin/env python
"""CI query-server smoke: incremental maintenance over HTTP.

Starts ``repro serve`` as a real subprocess on an ephemeral port (the
exact surface a deployment hits), ingests a delta through ``POST
/facts``, and requires the incrementally maintained certain answers to
equal a from-scratch chase of the unioned database computed in-process
— the server must *extend* the resident chase from the delta frontier,
never re-chase. Finishes with SIGTERM and requires a clean exit 0
(the server installs signal handlers for graceful drain).

Usage: PYTHONPATH=src python ci/check_serve.py
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.chase import run_chase  # noqa: E402
from repro.parser import (  # noqa: E402
    parse_database,
    parse_fact,
    parse_program,
    parse_query,
)

PROGRAM = """\
e(X, Y) -> p(X, Y)
p(X, Y), e(Y, Z) -> p(X, Z)
p(X, Y) -> exists W . tag(Y, W)
"""

EDGES = 8
DELTA = ["e(n8, n9)", "e(n9, n10)"]
QUERY = "q(X, Y) :- p(X, Y)"


def fail(message):
    print(f"check_serve: FAIL — {message}")
    return 1


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        return response.status, data
    finally:
        conn.close()


def from_scratch_answers():
    db = parse_database(
        "\n".join(f"e(n{i}, n{i + 1})" for i in range(EDGES))
    )
    for text in DELTA:
        db.add(parse_fact(text))
    result = run_chase(db, parse_program(PROGRAM), "semi_oblivious",
                       max_steps=100_000)
    if not result.terminated:
        raise RuntimeError("reference chase did not terminate")
    # Render rows the way the server does: "q(a, b)" per answer.
    return sorted(
        "q(" + ", ".join(str(t) for t in row) + ")"
        for row in parse_query(QUERY).certain_answers(result.instance)
    )


def run() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        rules_path = os.path.join(tmp, "rules.tgd")
        db_path = os.path.join(tmp, "db.facts")
        with open(rules_path, "w") as handle:
            handle.write(PROGRAM)
        with open(db_path, "w") as handle:
            handle.write("\n".join(
                f"e(n{i}, n{i + 1})" for i in range(EDGES)
            ) + "\n")

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "..", "src"),
                env.get("PYTHONPATH"),
            ) if p
        )
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", rules_path, db_path,
             "--variant", "so", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            # The CLI prints "% serving on http://host:port" (flushed)
            # once the resident chase is at fixpoint and the socket is
            # bound — the contract scripted clients key on.
            port = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = server.stdout.readline()
                if not line:
                    return fail(
                        f"server exited during startup "
                        f"(code {server.wait()})"
                    )
                if line.startswith("% serving on "):
                    port = int(line.rsplit(":", 1)[1])
                    break
            if port is None:
                return fail("never saw the '% serving on' line")

            status, health = request(port, "GET", "/health")
            if status != 200 or health.get("ok") is not True:
                return fail(f"/health returned {status}: {health}")

            status, before = request(port, "POST", "/query",
                                     {"query": QUERY, "certain": True})
            if status != 200:
                return fail(f"pre-delta /query returned {status}: {before}")

            status, ingest = request(port, "POST", "/facts",
                                     {"facts": DELTA})
            if status != 200:
                return fail(f"/facts returned {status}: {ingest}")
            if not ingest.get("terminated"):
                return fail(f"ingest leg did not reach fixpoint: {ingest}")
            if ingest.get("new_steps", 0) <= 0:
                return fail("ingest fired no chase steps for a real delta")

            status, after = request(port, "POST", "/query",
                                    {"query": QUERY, "certain": True})
            if status != 200:
                return fail(f"post-delta /query returned {status}: {after}")
            if after["watermark"] <= before["watermark"]:
                return fail(
                    f"watermark did not advance across the ingest "
                    f"({before['watermark']} -> {after['watermark']})"
                )

            expected = from_scratch_answers()
            got = sorted(after["answers"])
            if got != expected:
                return fail(
                    f"incrementally maintained answers diverge from "
                    f"the from-scratch chase: {got} != {expected}"
                )
            if len(got) <= len(before["answers"]):
                return fail("the delta added no answers to lose")

            server.send_signal(signal.SIGTERM)
            code = server.wait(timeout=30)
            if code != 0:
                return fail(f"SIGTERM shutdown exited {code}, expected 0")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
            server.stdout.close()

    print(
        f"check_serve: ok — {len(expected)} certain answers after the "
        f"delta, incremental == from-scratch, clean SIGTERM shutdown"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(run())
