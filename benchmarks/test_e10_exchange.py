"""E10 — the data-exchange motivation (§1): the chase computes
universal solutions, and the termination machinery predicts chase
safety ahead of time.
"""

from benchmarks.conftest import print_table
from repro.cq import ConjunctiveQuery, is_model
from repro.exchange import ExchangeSetting
from repro.model import Variable
from repro.parser import parse_atom, parse_database, parse_program


def _setting() -> ExchangeSetting:
    return ExchangeSetting(
        parse_program(
            "emp(N, D) -> exists E . employee(E, N), inDept(E, D)"
        ),
        parse_program(
            """
            inDept(E, D) -> dept(D)
            dept(D) -> exists M . manages(M, D)
            """
        ),
    )


def _source(rows: int):
    return parse_database(
        "\n".join(f"emp(worker{i}, dept{i % 5})" for i in range(rows))
    )


def test_e10_universal_solution(benchmark):
    setting = _setting()
    source = _source(10)

    def run():
        solution = setting.solve(source)
        return solution

    solution = benchmark(run)
    assert is_model(solution, setting.target)
    print_table(
        "E10: universal solution",
        ["source facts", "solution facts", "is target model"],
        [(len(source), len(solution), True)],
    )


def test_e10_certain_answers_scaling(benchmark):
    setting = _setting()

    def run():
        rows = []
        d = Variable("D")
        query = ConjunctiveQuery([d], [parse_atom("dept(D)")])
        for size in (5, 10, 20, 40):
            answers = setting.certain_answers(_source(size), query)
            rows.append((size, len(answers)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E10: certain dept answers vs source size",
                ["source facts", "certain answers"], rows)
    for size, answers in rows:
        assert answers == min(size, 5)  # 5 distinct departments


def test_e10_termination_precheck(benchmark):
    """The deciders flag the unsafe variant of the setting before any
    chase is attempted."""

    def run():
        safe = _setting().guarantees_termination("semi_oblivious")
        unsafe_setting = ExchangeSetting(
            parse_program(
                "emp(N, D) -> exists E . employee(E, N), inDept(E, D)"
            ),
            parse_program(
                "inDept(E, D) -> exists E2 . inDept(E2, D), mentor(E2, E)"
            ),
        )
        unsafe = unsafe_setting.guarantees_termination("semi_oblivious")
        return safe, unsafe

    safe, unsafe = benchmark(run)
    print_table("E10: termination precheck",
                ["setting", "guaranteed terminating"],
                [("standard", safe), ("self-feeding", unsafe)])
    assert safe is True
    assert unsafe is False
