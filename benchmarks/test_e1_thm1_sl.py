"""E1 — Theorem 1: CT_o ∩ SL = RA ∩ SL and CT_so ∩ SL = WA ∩ SL.

Regenerates the theorem as an experiment: on a large sample of random
simple-linear programs, the syntactic (rich/weak acyclicity) verdicts
must coincide *exactly* with the semantic guarded-type-graph verdicts,
and never contradict the budgeted critical-chase oracle.
"""

from benchmarks.conftest import print_table
from repro.chase import ChaseVariant
from repro.graphs import is_richly_acyclic, is_weakly_acyclic
from repro.termination import (
    critical_chase_terminates,
    decide_termination,
)
from repro.workloads import random_simple_linear

SAMPLES = [
    random_simple_linear(
        num_rules=2 + (seed % 5),
        num_predicates=2 + (seed % 3),
        max_arity=2 + (seed % 2),
        seed=seed,
    )
    for seed in range(40)
]


def _agreement_rows():
    rows = []
    agree_o = agree_so = oracle_ok = 0
    terminating_o = terminating_so = 0
    for rules in SAMPLES:
        ra = is_richly_acyclic(rules)
        wa = is_weakly_acyclic(rules)
        semantic_o = decide_termination(
            rules, variant=ChaseVariant.OBLIVIOUS, method="guarded"
        ).terminating
        semantic_so = decide_termination(
            rules, variant=ChaseVariant.SEMI_OBLIVIOUS, method="guarded"
        ).terminating
        agree_o += ra == semantic_o
        agree_so += wa == semantic_so
        terminating_o += semantic_o
        terminating_so += semantic_so
        oracle = critical_chase_terminates(
            rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=500
        )
        oracle_ok += (oracle is True) == semantic_so
    rows.append(("RA = CT_o on SL", f"{agree_o}/{len(SAMPLES)}"))
    rows.append(("WA = CT_so on SL", f"{agree_so}/{len(SAMPLES)}"))
    rows.append(("oracle agrees (so)", f"{oracle_ok}/{len(SAMPLES)}"))
    rows.append(("terminating (o)", terminating_o))
    rows.append(("terminating (so)", terminating_so))
    return rows, agree_o, agree_so, oracle_ok


def test_e1_characterization_agreement(benchmark):
    rows, agree_o, agree_so, oracle_ok = benchmark(_agreement_rows)
    print_table("E1: Theorem 1 on random SL programs",
                ["check", "result"], rows)
    assert agree_o == len(SAMPLES)
    assert agree_so == len(SAMPLES)
    assert oracle_ok == len(SAMPLES)


def test_e1_syntactic_decision_speed(benchmark):
    """The Theorem 1 decision itself (graph build + cycle search)."""

    def decide_all():
        return [
            (
                decide_termination(rules, variant=ChaseVariant.OBLIVIOUS)
                .terminating,
                decide_termination(rules, variant=ChaseVariant.SEMI_OBLIVIOUS)
                .terminating,
            )
            for rules in SAMPLES
        ]

    verdicts = benchmark(decide_all)
    assert len(verdicts) == len(SAMPLES)
