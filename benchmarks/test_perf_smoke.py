"""Smoke mode for the perf harness — tiny sizes, no timing assertions.

Runs every ``bench_perf`` scenario at a toy scale inside tier-1 so the
harness itself cannot rot: scenario builders must keep producing valid
programs, the indexed engine must terminate on them, and the
seed-engine replica must still agree with the indexed engine
fact-for-fact and trigger-for-trigger.  Timings are measured but never
asserted on.
"""

import json

import pytest

import bench_perf

SMOKE_SCALE = 0.01


@pytest.mark.parametrize(
    "make", bench_perf.SCENARIOS, ids=lambda make: make.__name__
)
def test_scenario_smoke(make):
    spec = make(SMOKE_SCALE)
    row = bench_perf.run_scenario(spec)
    assert row["terminated"]
    assert row["facts_created"] > 0
    assert row["triggers_fired"] > 0
    assert row["wall_s"] >= 0


def test_baseline_comparison_agrees_on_every_scenario():
    # run_baseline_comparison raises on any fact/trigger divergence
    # between the indexed engine and the seed replica.
    for make in bench_perf.SCENARIOS:
        report = bench_perf.run_baseline_comparison(make(SMOKE_SCALE))
        assert report["facts_final"] > 0


@pytest.mark.parametrize(
    "make,run",
    bench_perf.DECIDERS,
    ids=lambda arg: arg.__name__ if callable(arg) else str(arg),
)
def test_decider_scenarios_smoke(make, run):
    # The decider runners raise on any verdict/fact divergence between
    # the new engines and their pre-PR-2 baseline replicas.
    row = run(make(SMOKE_SCALE))
    assert row["wall_s"] >= 0
    assert row["baseline_wall_s"] >= 0
    assert row["speedup"] is not None
    assert row["rules"] > 0


def test_mfa_decider_scenario_is_mfa_at_smoke_scale():
    row = bench_perf.run_mfa_decider(
        bench_perf.mfa_decider_scenario(SMOKE_SCALE)
    )
    assert row["mfa"] is True
    assert row["facts_final"] > row["database_facts"]


def test_guarded_decider_scenario_terminates_at_smoke_scale():
    row = bench_perf.run_guarded_decider(
        bench_perf.guarded_decider_scenario(SMOKE_SCALE)
    )
    assert row["terminating"] is True
    assert row["pattern_joins"] > 0


@pytest.mark.parametrize(
    "make,run",
    bench_perf.QUERY_SCENARIOS,
    ids=lambda arg: arg.__name__ if callable(arg) else str(arg),
)
def test_query_scenarios_smoke(make, run):
    # The query runners raise on any answer-set / verdict divergence
    # between the planner path and their baselines.
    row = run(make(SMOKE_SCALE))
    assert row["equivalent"] is True
    assert row["wall_s"] >= 0 and row["baseline_wall_s"] >= 0
    assert row["rate_per_s"] is not None
    assert row["speedup"] is not None


def test_cq_answering_scenario_has_certain_answers():
    row = bench_perf.run_cq_answering(
        bench_perf.cq_answering_scenario(SMOKE_SCALE)
    )
    assert row["certain_answers"] > 0
    assert row["answers"] >= row["certain_answers"]
    assert row["queries"] >= 3


def test_entailment_scenario_mixes_verdicts():
    row = bench_perf.run_entailment(
        bench_perf.entailment_scenario(SMOKE_SCALE)
    )
    # At least one entailed and one refuted atom keep both outcomes
    # covered by the equivalence check.
    assert 0 < row["entailed"] < row["atoms_checked"]


def test_check_mode_fails_on_query_regression():
    payload = bench_perf.run_suite(scale=SMOKE_SCALE, compare=False)
    for row in payload["queries"]:
        row["rate_per_s"] *= 1e9  # impossible recorded rate
    ok, lines = bench_perf.check_against(payload, SMOKE_SCALE, ratio=0.5)
    assert not ok
    assert any(
        line.startswith("FAIL") and "answers/s" in line for line in lines
    )


def test_parallel_scenarios_are_byte_identical():
    # run_parallel_scenario raises on any serial/batched divergence;
    # the row records both walls and flags the equivalence check.
    row = bench_perf.run_parallel_scenario(
        bench_perf.deep_chain_scenario(SMOKE_SCALE), "threaded", 2
    )
    assert row["name"] == "deep_chain_parallel"
    assert row["equivalent"] is True
    assert row["serial_wall_s"] >= 0 and row["batched_wall_s"] >= 0


def test_mfa_parallel_runs_all_three_executors():
    row = bench_perf.run_mfa_parallel(
        bench_perf.mfa_decider_scenario(SMOKE_SCALE), workers=2
    )
    assert row["equivalent"] is True
    for key in ("serial_wall_s", "threaded_wall_s", "process_wall_s",
                "speedup_threaded", "speedup_process"):
        assert key in row


def test_check_mode_passes_against_fresh_report():
    payload = bench_perf.run_suite(scale=SMOKE_SCALE, compare=False)
    ok, lines = bench_perf.check_against(payload, SMOKE_SCALE, ratio=0.01)
    assert ok, lines
    # One rate line and one memory line per chase scenario, one rate
    # line per query scenario plus a speedup-gate skip line for each
    # of the two kernel rows (smoke scale sits below the kernel noise
    # floor), one governance-overhead line, one persistence line, a
    # serve speedup line and a serve queries/s line, a WAL-overhead
    # line and an overload-throughput line.
    assert len(lines) == (
        2 * len(bench_perf.SCENARIOS) + len(bench_perf.QUERY_SCENARIOS) + 8
    )
    assert sum("speedup gate" in line for line in lines) == 2
    assert sum("peak" in line for line in lines) == len(bench_perf.SCENARIOS)
    assert sum("fault_recovery" in line for line in lines) == 1
    assert sum("persistence" in line for line in lines) == 1
    assert sum("serve_incremental" in line for line in lines) == 2
    assert sum("serve_overload" in line for line in lines) == 2


def test_check_mode_fails_on_memory_regression():
    payload = bench_perf.run_suite(scale=SMOKE_SCALE, compare=False)
    for row in payload["scenarios"]:
        # Strip the working-set column (as a pre-PR-7 recording would
        # lack it) so the gate falls back to the traced-peak ceiling,
        # then make that ceiling impossible.
        row["working_set_mb"] = None
        row["peak_mem_mb"] /= 1e9
    ok, lines = bench_perf.check_against(payload, SMOKE_SCALE, ratio=0.01)
    assert not ok
    assert any(line.startswith("FAIL") and "peak" in line for line in lines)


def test_working_set_gate_prefers_rss_when_recorded():
    payload = bench_perf.run_suite(scale=SMOKE_SCALE, compare=False)
    measurable = [
        row for row in payload["scenarios"]
        if row.get("working_set_mb")
    ]
    if not measurable:
        pytest.skip("no RSS probe on this host")
    ok, lines = bench_perf.check_against(payload, SMOKE_SCALE, ratio=0.01)
    assert ok, lines
    assert sum("working-set" in line for line in lines) == len(measurable)


def test_scenario_rows_carry_peak_memory():
    row = bench_perf.run_scenario(bench_perf.deep_chain_scenario(SMOKE_SCALE))
    assert row["peak_mem_mb"] is not None and row["peak_mem_mb"] > 0
    # The working-set column exists everywhere; it is None only on
    # hosts with no RSS probe at all.
    assert "working_set_mb" in row
    if row["working_set_mb"] is not None:
        assert row["working_set_mb"] >= 0


def test_persistence_row_smoke(tmp_path):
    row = bench_perf.run_persistence(
        bench_perf.persistence_scenario(SMOKE_SCALE)
    )
    # The runner raises if the reopened store answers differently.
    assert row["equivalent"] is True
    assert row["certain_answers"] > 0
    assert row["disk_mb"] > 0
    assert row["save_s"] >= 0 and row["open_s"] >= 0
    assert row["rate_per_s"] is not None and row["rate_per_s"] > 0


def test_mfa_parallel_reports_delta_shipping():
    row = bench_perf.run_mfa_parallel(
        bench_perf.mfa_decider_scenario(SMOKE_SCALE), workers=2
    )
    # Delta-only shipping: across a multi-round saturation the rows
    # actually shipped must undercut the old ship-everything protocol.
    assert row["ship_rounds"] and row["ship_rows"] is not None
    assert row["ship_rows"] <= row["ship_rows_old_protocol"]


def test_fault_recovery_row_smoke():
    row = bench_perf.run_fault_recovery(SMOKE_SCALE)
    # The governed run is equivalence-checked inside the runner; at
    # smoke scale the wall sits under the noise floor, so the gate
    # verdict is "skipped" (None) rather than a coin flip.
    assert row["equivalent"] is True
    assert row["budget_checks"] and row["budget_checks"] > 0
    assert row["overhead_pct"] is not None


def test_serve_incremental_row_smoke():
    row = bench_perf.run_serve_incremental(
        bench_perf.serve_incremental_scenario(SMOKE_SCALE)
    )
    # The runner raises if any incremental leg diverges from the
    # from-scratch chase of the same prefix; at smoke scale the gate
    # wall sits under the noise floor, so the verdict may be skipped.
    assert row["equivalent"] is True
    assert row["deltas"] >= 2
    assert row["queries_served"] > 0
    assert row["incremental_wall_s"] >= 0


def test_serve_overload_row_smoke():
    row = bench_perf.run_serve_overload(
        bench_perf.serve_overload_scenario(SMOKE_SCALE)
    )
    # The runner raises if an accepted answer is wrong, a shed
    # response lacks Retry-After, or the journaled/journal-less arms
    # diverge; at smoke scale the WAL gate sits under the noise floor.
    assert row["equivalent"] is True
    assert row["accepted"] > 0
    assert row["wal_overhead_pct"] is not None
    assert row["clients"] == 2 * row["max_inflight"]


def test_check_mode_fails_on_regression():
    payload = bench_perf.run_suite(scale=SMOKE_SCALE, compare=False)
    for row in payload["scenarios"]:
        row["facts_per_s"] *= 1e9  # impossible recorded rate
    ok, lines = bench_perf.check_against(payload, SMOKE_SCALE)
    assert not ok
    assert any(line.startswith("FAIL") for line in lines)


def test_check_mode_fails_on_unknown_scenario():
    payload = {"scenarios": [{"name": "gone", "facts_per_s": 1.0}]}
    ok, lines = bench_perf.check_against(payload, SMOKE_SCALE)
    assert not ok


def test_check_cli_exit_codes(tmp_path):
    report = tmp_path / "report.json"
    assert bench_perf.main(
        ["--scale", str(SMOKE_SCALE), "--output", str(report),
         "--no-compare"]
    ) == 0
    assert bench_perf.main(
        ["--scale", str(SMOKE_SCALE), "--check", str(report),
         "--check-ratio", "0.01"]
    ) == 0
    broken = json.loads(report.read_text())
    for row in broken["scenarios"]:
        row["facts_per_s"] *= 1e9
    bad = tmp_path / "broken.json"
    bad.write_text(json.dumps(broken))
    assert bench_perf.main(
        ["--scale", str(SMOKE_SCALE), "--check", str(bad)]
    ) == 1


def test_suite_payload_shape(tmp_path):
    payload = bench_perf.run_suite(scale=SMOKE_SCALE, compare=False)
    assert payload["schema_version"] == 1
    assert len(payload["scenarios"]) == len(bench_perf.SCENARIOS)
    names = {row["name"] for row in payload["scenarios"]}
    assert bench_perf.HEADLINE in names
    for row in payload["scenarios"]:
        for key in ("variant", "facts_final", "triggers_fired", "wall_s",
                    "facts_per_s", "triggers_per_s", "terminated"):
            assert key in row
    decider_names = {row["name"] for row in payload["deciders"]}
    assert decider_names == {"mfa_decider", "guarded_decider"}
    assert payload["headline_decider"] in decider_names
    for row in payload["deciders"]:
        for key in ("wall_s", "baseline_wall_s", "speedup"):
            assert key in row
    query_names = {row["name"] for row in payload["queries"]}
    assert query_names == {"cq_answering", "entailment",
                           "vectorized_join", "wcoj_cyclic"}
    assert payload["headline_query"] in query_names
    for row in payload["queries"]:
        for key in ("wall_s", "baseline_wall_s", "rate_per_s",
                    "baseline_rate_per_s", "speedup", "equivalent"):
            assert key in row
    kernel_rows = {row["name"]: row for row in payload["queries"]
                   if row.get("gate_speedup")}
    assert set(kernel_rows) == {"vectorized_join", "wcoj_cyclic"}
    assert kernel_rows["vectorized_join"]["kernel"] == "vector"
    assert kernel_rows["wcoj_cyclic"]["kernel"] == "wcoj"
    for row in kernel_rows.values():
        for key in ("kernel", "numpy", "answers", "gate_speedup",
                    "within_gate"):
            assert key in row
    parallel_names = {row["name"] for row in payload["parallel"]}
    assert {"deep_chain_parallel", "guarded_ontology_parallel",
            "mfa_decider_parallel"} <= parallel_names
    assert all(row["equivalent"] for row in payload["parallel"])
    fault = payload["fault_recovery"]
    for key in ("ungoverned_wall_s", "governed_wall_s", "overhead_pct",
                "gate_pct", "within_gate", "budget_checks"):
        assert key in fault
    serve = payload["serve_incremental"]
    for key in ("incremental_wall_s", "full_rechase_wall_s", "speedup",
                "gate_speedup", "within_gate", "readers",
                "queries_served", "queries_per_s", "equivalent"):
        assert key in serve
    assert serve["equivalent"] is True
    overload = payload["serve_overload"]
    for key in ("accepted", "shed", "shed_rate", "accepted_per_s",
                "wal_plain_wall_s", "wal_journal_wall_s",
                "wal_overhead_pct", "wal_gate_pct", "wal_within_gate",
                "equivalent"):
        assert key in overload
    assert overload["equivalent"] is True
    stored = payload["persistence"]
    for key in ("save_s", "open_s", "disk_mb", "certain_answers",
                "rate_per_s", "equivalent"):
        assert key in stored
    assert stored["equivalent"] is True
    hardware = payload["hardware"]
    assert hardware["cpu_count"] >= 1
    assert hardware["platform"] and hardware["machine"]
    # The payload must round-trip through JSON (that is the contract
    # BENCH_chase.json consumers rely on).
    assert json.loads(json.dumps(payload)) == payload


def test_main_writes_report(tmp_path):
    out = tmp_path / "BENCH_chase.json"
    assert bench_perf.main(
        ["--scale", str(SMOKE_SCALE), "--output", str(out), "--no-compare"]
    ) == 0
    payload = json.loads(out.read_text())
    assert payload["harness"] == "benchmarks/bench_perf.py"
