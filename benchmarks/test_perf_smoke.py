"""Smoke mode for the perf harness — tiny sizes, no timing assertions.

Runs every ``bench_perf`` scenario at a toy scale inside tier-1 so the
harness itself cannot rot: scenario builders must keep producing valid
programs, the indexed engine must terminate on them, and the
seed-engine replica must still agree with the indexed engine
fact-for-fact and trigger-for-trigger.  Timings are measured but never
asserted on.
"""

import json

import pytest

import bench_perf

SMOKE_SCALE = 0.01


@pytest.mark.parametrize(
    "make", bench_perf.SCENARIOS, ids=lambda make: make.__name__
)
def test_scenario_smoke(make):
    spec = make(SMOKE_SCALE)
    row = bench_perf.run_scenario(spec)
    assert row["terminated"]
    assert row["facts_created"] > 0
    assert row["triggers_fired"] > 0
    assert row["wall_s"] >= 0


def test_baseline_comparison_agrees_on_every_scenario():
    # run_baseline_comparison raises on any fact/trigger divergence
    # between the indexed engine and the seed replica.
    for make in bench_perf.SCENARIOS:
        report = bench_perf.run_baseline_comparison(make(SMOKE_SCALE))
        assert report["facts_final"] > 0


@pytest.mark.parametrize(
    "make,run",
    bench_perf.DECIDERS,
    ids=lambda arg: arg.__name__ if callable(arg) else str(arg),
)
def test_decider_scenarios_smoke(make, run):
    # The decider runners raise on any verdict/fact divergence between
    # the new engines and their pre-PR-2 baseline replicas.
    row = run(make(SMOKE_SCALE))
    assert row["wall_s"] >= 0
    assert row["baseline_wall_s"] >= 0
    assert row["speedup"] is not None
    assert row["rules"] > 0


def test_mfa_decider_scenario_is_mfa_at_smoke_scale():
    row = bench_perf.run_mfa_decider(
        bench_perf.mfa_decider_scenario(SMOKE_SCALE)
    )
    assert row["mfa"] is True
    assert row["facts_final"] > row["database_facts"]


def test_guarded_decider_scenario_terminates_at_smoke_scale():
    row = bench_perf.run_guarded_decider(
        bench_perf.guarded_decider_scenario(SMOKE_SCALE)
    )
    assert row["terminating"] is True
    assert row["pattern_joins"] > 0


def test_suite_payload_shape(tmp_path):
    payload = bench_perf.run_suite(scale=SMOKE_SCALE, compare=False)
    assert payload["schema_version"] == 1
    assert len(payload["scenarios"]) == len(bench_perf.SCENARIOS)
    names = {row["name"] for row in payload["scenarios"]}
    assert bench_perf.HEADLINE in names
    for row in payload["scenarios"]:
        for key in ("variant", "facts_final", "triggers_fired", "wall_s",
                    "facts_per_s", "triggers_per_s", "terminated"):
            assert key in row
    decider_names = {row["name"] for row in payload["deciders"]}
    assert decider_names == {"mfa_decider", "guarded_decider"}
    assert payload["headline_decider"] in decider_names
    for row in payload["deciders"]:
        for key in ("wall_s", "baseline_wall_s", "speedup"):
            assert key in row
    # The payload must round-trip through JSON (that is the contract
    # BENCH_chase.json consumers rely on).
    assert json.loads(json.dumps(payload)) == payload


def test_main_writes_report(tmp_path):
    out = tmp_path / "BENCH_chase.json"
    assert bench_perf.main(
        ["--scale", str(SMOKE_SCALE), "--output", str(out), "--no-compare"]
    ) == 0
    payload = json.loads(out.read_text())
    assert payload["harness"] == "benchmarks/bench_perf.py"
