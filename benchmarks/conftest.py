"""Shared helpers for the experiment benchmarks (E1–E10).

Every module regenerates one paper claim (DESIGN.md §4).  Helpers here
print compact tables so that running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper-style summary rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Render a fixed-width table to stdout."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title}")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
