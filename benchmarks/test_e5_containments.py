"""E5/E6 — the paper's class containments, measured.

§2: CT_o ⊆ CT_so (and ∀/∃ variants coincide — our engines realize one
fair sequence, whose termination status is the class's by the cited
equivalence).  §3.1: RA ⊆ WA.  The bench counts how often the
inclusions are strict on random programs — the separation rate.
"""

from benchmarks.conftest import print_table
from repro.chase import ChaseVariant
from repro.graphs import is_richly_acyclic, is_weakly_acyclic
from repro.termination import decide_termination
from repro.workloads import random_guarded, random_linear, random_simple_linear

SAMPLES = (
    [random_simple_linear(3 + s % 3, seed=s) for s in range(25)]
    + [random_linear(3 + s % 3, repeat_prob=0.5, seed=s) for s in range(20)]
    + [random_guarded(2 + s % 3, seed=s) for s in range(15)]
)


def test_e5_ct_o_subset_ct_so(benchmark):
    def run():
        violations = 0
        strict = 0
        both_terminating = 0
        for rules in SAMPLES:
            o = decide_termination(
                rules, variant=ChaseVariant.OBLIVIOUS
            ).terminating
            so = decide_termination(
                rules, variant=ChaseVariant.SEMI_OBLIVIOUS
            ).terminating
            if o and not so:
                violations += 1
            if so and not o:
                strict += 1
            if o and so:
                both_terminating += 1
        return violations, strict, both_terminating

    violations, strict, both = benchmark(run)
    print_table(
        "E5: CT_o ⊆ CT_so on random programs",
        ["check", "count"],
        [
            ("violations (must be 0)", violations),
            ("strictly so-only terminating", strict),
            ("terminating for both", both),
            ("total programs", len(SAMPLES)),
        ],
    )
    assert violations == 0
    assert strict > 0  # the inclusion is strict — the paper's point


def test_e6_ra_subset_wa(benchmark):
    def run():
        violations = 0
        strict = 0
        for rules in SAMPLES:
            ra = is_richly_acyclic(rules)
            wa = is_weakly_acyclic(rules)
            if ra and not wa:
                violations += 1
            if wa and not ra:
                strict += 1
        return violations, strict

    violations, strict = benchmark(run)
    print_table(
        "E6: RA ⊆ WA on random programs",
        ["check", "count"],
        [
            ("violations (must be 0)", violations),
            ("strictly WA-only", strict),
            ("total programs", len(SAMPLES)),
        ],
    )
    assert violations == 0
    assert strict > 0
