"""E4 — Theorem 4: the guarded decision procedure.

Verdict correctness on the guarded families (tower terminating, loop
diverging), scaling of the type space with tower depth, and the
standard-database variant.
"""

from benchmarks.conftest import print_table
from repro.chase import ChaseVariant
from repro.termination import (
    critical_chase_terminates,
    decide_guarded,
)
from repro.workloads import guarded_loop_family, guarded_tower_family


def test_e4_verdicts_and_type_space(benchmark):
    def run():
        rows = []
        for levels in (1, 2, 3, 4):
            tower = guarded_tower_family(levels)
            loop = guarded_loop_family(levels)
            tower_verdict = decide_guarded(
                tower, ChaseVariant.SEMI_OBLIVIOUS
            )
            loop_verdict = decide_guarded(
                loop, ChaseVariant.SEMI_OBLIVIOUS
            )
            rows.append(
                (
                    levels,
                    tower_verdict.terminating,
                    tower_verdict.stats["types"],
                    loop_verdict.terminating,
                    loop_verdict.stats["types"],
                )
            )
        return rows

    rows = benchmark(run)
    print_table(
        "E4: guarded tower vs loop (semi-oblivious)",
        ["levels", "tower terminates", "tower types",
         "loop terminates", "loop types"],
        rows,
    )
    for levels, tower_ok, tower_types, loop_ok, _ in rows:
        assert tower_ok
        assert not loop_ok
        # The DAG tower's reachable types grow with depth.
        assert tower_types >= levels


def test_e4_oracle_cross_check(benchmark):
    def run():
        agree = 0
        cases = []
        for levels in (1, 2, 3):
            cases.append((guarded_tower_family(levels), True))
            cases.append((guarded_loop_family(levels), False))
        for rules, expected in cases:
            oracle = critical_chase_terminates(
                rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=600
            )
            agree += (oracle is True) == expected
        return agree, len(cases)

    agree, total = benchmark(run)
    print_table("E4: decider vs oracle", ["agree", "total"],
                [(agree, total)])
    assert agree == total


def test_e4_standard_database_analysis(benchmark):
    """The standard critical instance (constants 0/1) enlarges the
    type space but preserves verdicts for 0/1-oblivious programs."""

    def run():
        rows = []
        for levels in (1, 2):
            rules = guarded_tower_family(levels)
            plain = decide_guarded(rules, ChaseVariant.SEMI_OBLIVIOUS)
            standard = decide_guarded(
                rules, ChaseVariant.SEMI_OBLIVIOUS, standard=True
            )
            rows.append(
                (
                    levels,
                    plain.terminating,
                    plain.stats["types"],
                    standard.terminating,
                    standard.stats["types"],
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E4: plain vs standard critical instance",
        ["levels", "plain verdict", "plain types",
         "standard verdict", "standard types"],
        rows,
    )
    for _, plain_ok, plain_types, standard_ok, standard_types in rows:
        assert plain_ok == standard_ok
        assert standard_types >= plain_types
