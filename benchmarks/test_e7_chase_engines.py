"""E7 — chase engine behaviour: Examples 1/2 growth and the o/so/
restricted instance-size ordering.

The paper's §1–2 examples describe the chase's growth; this bench
measures the three engines on the same inputs: the oblivious chase
fires per homomorphism, the semi-oblivious per frontier image, the
restricted only on unsatisfied heads — so instance sizes must be
ordered restricted ≤ semi-oblivious ≤ oblivious.
"""

from benchmarks.conftest import print_table
from repro.chase import ChaseVariant, run_chase
from repro.parser import parse_database, parse_program
from repro.workloads import dl_lite_family, random_database


def test_e7_example1_growth(benchmark):
    """Example 1: the chase prefix grows linearly in the step budget."""
    rules = parse_program(
        "person(X) -> exists Y . hasFather(X, Y), person(Y)"
    )
    db = parse_database("person(bob)")

    def run():
        rows = []
        for budget in (10, 20, 40, 80):
            result = run_chase(
                db, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=budget
            )
            rows.append((budget, len(result.instance)))
        return rows

    rows = benchmark(run)
    print_table("E7: Example 1 chase growth",
                ["step budget", "facts"], rows)
    sizes = [row[1] for row in rows]
    assert sizes == sorted(sizes)
    # 2 facts per step (hasFather + person) + the original fact.
    for budget, size in rows:
        assert size == 2 * budget + 1


def test_e7_variant_size_ordering(benchmark):
    """restricted ≤ semi-oblivious ≤ oblivious on terminating inputs."""
    rules = parse_program("emp(X, D) -> exists E . contract(X, E)")
    db = parse_database(
        """
        emp(ada, maths)
        emp(ada, physics)
        emp(alan, computing)
        contract(alan, c0)
        """
    )

    def run():
        sizes = {}
        steps = {}
        for variant in ChaseVariant.ALL:
            result = run_chase(db, rules, variant, max_steps=4000)
            assert result.terminated, variant
            sizes[variant] = len(result.instance)
            steps[variant] = result.step_count
        return sizes, steps

    sizes, steps = benchmark(run)
    print_table(
        "E7: engine comparison (terminating workload)",
        ["variant", "facts", "applied triggers"],
        [(v, sizes[v], steps[v]) for v in ChaseVariant.ALL],
    )
    # Strict on this workload: the oblivious chase fires once per
    # (X, D) pair, the semi-oblivious once per X, and the restricted
    # chase skips the pre-satisfied employee.
    assert (
        sizes[ChaseVariant.RESTRICTED]
        < sizes[ChaseVariant.SEMI_OBLIVIOUS]
        < sizes[ChaseVariant.OBLIVIOUS]
    )


def test_e7_engine_throughput(benchmark):
    """Raw engine speed on a DL-Lite workload (for regression
    tracking; absolute numbers are environment-specific)."""
    rules = dl_lite_family(6)
    db = random_database(rules, num_constants=4, facts_per_predicate=3,
                         seed=7)

    def run():
        result = run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                           max_steps=5000)
        assert result.terminated
        return result.step_count

    steps = benchmark(run)
    assert steps > 0
