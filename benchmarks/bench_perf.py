"""Chase performance harness — timed scenarios + ``BENCH_chase.json``.

Measures the indexed join engine (term-level fact indexes + compiled
join plans, PR 1) on four workload shapes:

* **deep_chain** — path composition ``e(X,Y), e(Y,Z) → p(X,Z)`` over a
  long chain: the canonical 2-atom join that is quadratic without
  term-level indexes;
* **wide_relation** — a skewed star join over wide fan-out relations;
* **guarded_ontology** — ``guarded_tower_family`` from
  :mod:`repro.workloads` (multi-atom guarded bodies, fresh nulls per
  level);
* **data_exchange** — an s-t TGD exchange step followed by
  target-side joins, the E10-style workload.

Each scenario reports wall time, facts/sec and triggers/sec.  The
headline scenario (``deep_chain``) is additionally run through a
faithful replica of the *seed* engine — the pre-index recursive
backtracking join retained as
:func:`repro.model.homomorphism.naive_homomorphisms` — and the JSON
records the speedup so future PRs can track the perf trajectory.

PR 2 adds two **decider** scenarios, each timed against a faithful
replica of its pre-PR-2 baseline:

* **mfa_decider** (headline) — the MFA Skolem chase over the critical
  instance of an existential tower, new delta-driven engine vs the old
  full-reenumeration-per-round loop (with its per-round seen-set and
  lazy mid-enumeration discovery);
* **guarded_decider** — Theorem 4's type-graph procedure, compiled
  class-indexed pattern joins vs the retained naive backtracking scan.

PR 3 adds **round-batched executor** scenarios (``*_parallel``): each
runs its workload once through the serial engine and once through a
batched executor (:mod:`repro.chase.scheduler`), asserts the results
are byte-identical (facts, trigger keys, null/Skolem numbering), and
records both walls plus the speedup.  On single-core CI boxes the
``threaded`` executor is GIL-bound (~1×) and ``process`` pays spawn
overhead (<1×); the rows exist to (a) prove equivalence on every run
and (b) track the trajectory on real multi-core hardware.

PR 5 adds two **query-side** scenarios (the read half of the paper's
pipeline — chase → universal model → certain answers):

* **cq_answering** (headline query) — certain-answer CQ evaluation
  over the chased ``data_exchange`` instance through the int-native
  cost-planned :mod:`repro.query` subsystem, timed against a faithful
  replica of the pre-PR-5 object-level ``ConjunctiveQuery`` path
  (``homomorphisms`` + ``Term``-tuple dedup); answer sets must be
  identical;
* **entailment** — guarded atom entailment rooted at a concrete
  database, cost-planner pattern-join ordering vs the retained
  heuristic ordering; verdicts must agree.

PR 6 adds a **fault_recovery** row: the headline chase under a
generous (never-tripping) :class:`repro.Budget` vs ungoverned,
interleaved best-of-N — budget checks must cost ≤5%.  The payload also
records the measurement hardware (`platform`, `machine`, `cpu_count`)
so rate floors are interpretable across machines.

PR 4 (the interned columnar fact core) re-recorded everything ≥2×
faster, added a ``peak_mem_mb`` column (measured by ``tracemalloc``
in a *separate* untimed run per scenario — tracing slows execution),
made ``--check`` gate memory at a ≤2× ceiling next to the 0.5×
facts/s floor, and added delta-shipping counters to the MFA process
row (``ship_rows`` vs ``ship_rows_old_protocol``: what the old
pickle-the-instance protocol would have shipped).  Scenario timings
are best-of-``SCENARIO_REPEATS`` after a warmup run, the ``timeit``
convention.

PR 7 (durable fact stores) adds a **persistence** row — chase the
``data_exchange`` workload, persist it with ``save_store``, reopen the
directory (lazy, O(1)), and serve the ``cq_answering`` certain-answer
battery from the reopened store; the store-served answers must equal
the in-memory ones, and the row records save/open walls, on-disk size,
and the answers/s rate ``--check`` gates.  PR 7 also turns the memory
ceiling into a *working-set* gate: each scenario now records
``working_set_mb``, the RSS growth of the run measured in a fresh
child interpreter (tracemalloc never sees mmap'd segments or ``array``
buffers), and ``--check`` prefers that column over the traced peak
whenever both sides carry it.

PR 8 (chase-as-a-service) adds a **serve_incremental** row: deltas fed
to a resident :class:`repro.chase.incremental.ChaseSession` vs
re-chasing the union from scratch after every delta (identical fact
sets, speedup gated at ≥2×), plus sustained queries/s from a
:class:`repro.serve.ChaseService` under concurrent reader threads
while one writer ingests the same schedule.

PR 9 (crash-recoverable, overload-safe serving) adds a
**serve_overload** row: closed-loop HTTP clients at 2× the admission
slots (accepted answers must stay correct, every shed response must
carry ``Retry-After``; throughput and shed rate are recorded) plus the
write-ahead ingest journal's durability cost — wall spent in the
journal's encode+write+fsync calls relative to the chase legs they
ride on, measured paired inside the journaled runs — gated at ≤10%.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py             # full run
    PYTHONPATH=src python benchmarks/bench_perf.py --scale 0.2 # quicker
    PYTHONPATH=src python benchmarks/bench_perf.py --no-compare
    PYTHONPATH=src python benchmarks/bench_perf.py \
        --scale 0.25 --check BENCH_chase.json      # CI regression gate

writes ``BENCH_chase.json`` next to the repo root (override with
``--output``).  ``--check`` runs the chase scenarios against a
recorded report instead: every scenario's measured ``facts_per_s``
must stay above ``--check-ratio`` (default 0.5) times the recorded
value or the process exits non-zero — the CI bench-regression gate.
``benchmarks/test_perf_smoke.py`` runs the same scenarios at toy
sizes inside tier-1 so the harness cannot rot.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pickle
import platform
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chase import (
    ChaseVariant,
    RoundScheduler,
    critical_instance,
    run_chase,
)
from repro.chase.result import ChaseResult
from repro.chase.triggers import Trigger, apply_trigger, head_satisfied
from repro.model import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    NullFactory,
    Predicate,
    TGD,
    Variable,
    homomorphisms,
    match_atom,
    naive_homomorphisms,
)
from repro.cq import ConjunctiveQuery
from repro.entailment import entails_atom
from repro.termination import decide_guarded, skolem_chase
from repro.termination.mfa import SkolemTerm
from repro.workloads import guarded_tower_family

DEFAULT_OUTPUT = "BENCH_chase.json"

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


# -- scenarios -------------------------------------------------------------


def deep_chain_scenario(scale: float) -> Dict:
    """Path composition over a 2600·scale-edge chain (≥5k facts at
    scale 1.0) — the headline semi-oblivious join scenario."""
    n = max(4, int(2600 * scale))
    e, p = Predicate("e", 2), Predicate("p", 2)
    rules = [TGD([Atom(e, [X, Y]), Atom(e, [Y, Z])], [Atom(p, [X, Z])],
                 label="compose")]
    database = Database(
        Atom(e, [Constant(f"c{i}"), Constant(f"c{i + 1}")])
        for i in range(n)
    )
    return {
        "name": "deep_chain",
        "rules": rules,
        "database": database,
        "variant": ChaseVariant.SEMI_OBLIVIOUS,
        "max_steps": 1_000_000,
    }


def wide_relation_scenario(scale: float) -> Dict:
    """A skewed star join: many ``r`` tuples funnel through few hub
    values into ``s``, then project through an existential."""
    n = max(4, int(1800 * scale))
    hubs = max(2, n // 60)
    r, s, t, u = (Predicate("r", 2), Predicate("s", 2),
                  Predicate("t", 2), Predicate("u", 2))
    rules = [
        TGD([Atom(r, [X, Y]), Atom(s, [Y, Z])], [Atom(t, [X, Z])],
            label="star"),
        TGD([Atom(t, [X, Z])], [Atom(u, [Z, W])], label="witness"),
    ]
    database = Database()
    for i in range(n):
        database.add(Atom(r, [Constant(f"a{i}"), Constant(f"h{i % hubs}")]))
    for j in range(hubs):
        database.add(Atom(s, [Constant(f"h{j}"), Constant(f"b{j}")]))
    return {
        "name": "wide_relation",
        "rules": rules,
        "database": database,
        "variant": ChaseVariant.SEMI_OBLIVIOUS,
        "max_steps": 1_000_000,
    }


def guarded_ontology_scenario(scale: float) -> Dict:
    """``guarded_tower_family``: multi-atom guarded bodies, one fresh
    null per level, seeded with a wide first level."""
    levels = max(2, int(14 * scale))
    width = max(2, int(700 * scale))
    rules = guarded_tower_family(levels)
    r1, m1 = Predicate("r1", 2), Predicate("m1", 1)
    database = Database()
    for i in range(width):
        database.add(Atom(r1, [Constant(f"c{i}"), Constant(f"d{i}")]))
        database.add(Atom(m1, [Constant(f"d{i}")]))
    return {
        "name": "guarded_ontology",
        "rules": rules,
        "database": database,
        "variant": ChaseVariant.RESTRICTED,
        "max_steps": 1_000_000,
    }


def data_exchange_scenario(scale: float) -> Dict:
    """An exchange step: source ``emp``/``dept`` rows are translated to
    the target schema with invented keys, then target TGDs join the
    translated rows back together (the E10 workload shape)."""
    n = max(4, int(1600 * scale))
    depts = max(2, n // 40)
    emp = Predicate("emp", 2)           # source: (employee, dept name)
    dept = Predicate("dept", 1)         # source: dept names
    works = Predicate("works", 2)       # target: (employee, dept key)
    dkey = Predicate("dkey", 2)         # target: (dept name, dept key)
    office = Predicate("office", 2)     # target: (dept key, office)
    located = Predicate("located", 2)   # target: (employee, office)
    D, K, O = Variable("D"), Variable("K"), Variable("O")
    rules = [
        TGD([Atom(dept, [D])], [Atom(dkey, [D, K])], label="st_dept"),
        TGD([Atom(emp, [X, D]), Atom(dkey, [D, K])],
            [Atom(works, [X, K])], label="st_emp"),
        TGD([Atom(dkey, [D, K])], [Atom(office, [K, O])], label="t_office"),
        TGD([Atom(works, [X, K]), Atom(office, [K, O])],
            [Atom(located, [X, O])], label="t_located"),
    ]
    database = Database()
    for j in range(depts):
        database.add(Atom(dept, [Constant(f"d{j}")]))
    for i in range(n):
        database.add(Atom(emp, [Constant(f"e{i}"), Constant(f"d{i % depts}")]))
    return {
        "name": "data_exchange",
        "rules": rules,
        "database": database,
        "variant": ChaseVariant.SEMI_OBLIVIOUS,
        "max_steps": 1_000_000,
    }


SCENARIOS = (
    deep_chain_scenario,
    wide_relation_scenario,
    guarded_ontology_scenario,
    data_exchange_scenario,
)

HEADLINE = "deep_chain"


# -- the seed engine, replicated ------------------------------------------
#
# A faithful copy of the seed's semi-naive round loop, driven by the
# retained pre-index matcher (`naive_homomorphisms` + per-call
# `match_atom` dict copies).  This is the baseline the speedup figure
# in BENCH_chase.json is measured against.


def _seed_incremental_triggers(rules, instance, new_facts):
    new_by_predicate: Dict[Predicate, List[Atom]] = {}
    for fact in new_facts:
        new_by_predicate.setdefault(fact.predicate, []).append(fact)
    for rule_index, rule in enumerate(rules):
        for pivot, pivot_atom in enumerate(rule.body):
            candidates = new_by_predicate.get(pivot_atom.predicate)
            if not candidates:
                continue
            rest = [a for i, a in enumerate(rule.body) if i != pivot]
            for fact in candidates:
                partial = match_atom(pivot_atom, fact, {})
                if partial is None:
                    continue
                for assignment in naive_homomorphisms(
                    rest, instance, partial
                ):
                    yield Trigger(rule, rule_index, assignment)


def seed_chase(
    database: Instance,
    rules: Sequence[TGD],
    variant: str,
    max_steps: int,
) -> Tuple[Instance, int, bool]:
    """Run the seed engine; returns ``(instance, steps, terminated)``."""
    instance = Instance(database)
    factory = NullFactory()
    fired = set()
    steps = 0
    frontier: List[Atom] = list(instance)
    while True:
        round_triggers = list(
            _seed_incremental_triggers(rules, instance, frontier)
        )
        frontier = []
        fired_this_round = 0
        for trigger in round_triggers:
            key = trigger.key(variant)
            if key in fired:
                continue
            if variant == ChaseVariant.RESTRICTED and head_satisfied(
                trigger, instance
            ):
                fired.add(key)
                continue
            fired.add(key)
            new_facts = apply_trigger(trigger, instance, factory)
            frontier.extend(new_facts)
            steps += 1
            fired_this_round += 1
            if steps >= max_steps:
                return instance, steps, False
        if fired_this_round == 0:
            return instance, steps, True


# -- decider scenarios -----------------------------------------------------


def mfa_decider_scenario(scale: float) -> Dict:
    """MFA over an existential tower: level ``i`` joins ``s_i`` with
    ``t_i`` and invents the next level's member, so the Skolem chase of
    the critical instance runs ~``levels`` rounds and builds
    ~``levels²/2`` nested Skolem terms.  Rules are listed top level
    first, which keeps the round structure identical for the delta
    engine and the pre-PR-2 baseline."""
    levels = max(3, int(40 * scale))
    rules: List[TGD] = []
    for i in reversed(range(levels)):
        s_i = Predicate(f"s{i + 1}", 1)
        t_i = Predicate(f"t{i + 1}", 1)
        r_i = Predicate(f"r{i + 1}", 2)
        s_next = Predicate(f"s{i + 2}", 1)
        t_next = Predicate(f"t{i + 2}", 1)
        rules.append(
            TGD(
                [Atom(s_i, [X]), Atom(t_i, [X])],
                [Atom(r_i, [X, Z]), Atom(s_next, [Z]), Atom(t_next, [Z])],
                label=f"level{i + 1}",
            )
        )
    return {"name": "mfa_decider", "rules": rules, "max_steps": 1_000_000}


def guarded_decider_scenario(scale: float) -> Dict:
    """Theorem 4 on a join-heavy guarded tower.

    Six rule constants widen the critical domain to seven values, so
    every ternary relation holds 343 patterns in every bag cloud; each
    level's *full* rule joins three atoms of that relation with bound
    repeats and constants — selective joins over wide relations, which
    the naive per-atom scan pays for in full while the class-indexed
    plans probe.  A single existential spawn rule keeps the type space
    (and hence canonicalization work) small, so the body-vs-cloud joins
    dominate the decider's runtime."""
    levels = max(2, int(8 * scale))
    c1, c2, c3, c4, c5, c6 = (Constant(f"gc{i}") for i in range(1, 7))
    rules: List[TGD] = []
    for i in range(levels):
        g_i = Predicate(f"g{i + 1}", 3)
        g_next = Predicate(f"g{i + 2}", 3)
        rules.append(
            TGD(
                [
                    Atom(g_i, [X, Y, Z]),
                    Atom(g_i, [Y, c1, Z]),
                    Atom(g_i, [Z, X, c2]),
                ],
                [Atom(g_next, [X, Y, Z])],
                label=f"join{i + 1}",
            )
        )
    mk = Predicate("mk", 1)
    p, q = Predicate("p", 2), Predicate("q", 1)
    rules.append(
        TGD([Atom(mk, [X])], [Atom(Predicate("g1", 3), [X, c1, c2])],
            label="anchor_a")
    )
    rules.append(
        TGD([Atom(mk, [X])], [Atom(Predicate("g1", 3), [c3, c4, X])],
            label="anchor_b")
    )
    rules.append(
        TGD([Atom(mk, [X])], [Atom(Predicate("g1", 3), [c5, X, c6])],
            label="anchor_c")
    )
    # The spawn rule is deliberately frontier-free: it creates exactly
    # one child type, so bag creation — and with it canonicalization —
    # stays cheap and the decider's runtime is dominated by the join
    # rules above.
    rules.append(
        TGD(
            [Atom(Predicate(f"g{levels + 1}", 3), [c3, c4, c5])],
            [Atom(p, [c6, W])],
            label="spawn",
        )
    )
    rules.append(TGD([Atom(p, [X, Y])], [Atom(q, [Y])], label="collect"))
    return {
        "name": "guarded_decider",
        "rules": rules,
        "variant": ChaseVariant.SEMI_OBLIVIOUS,
        "max_types": 100_000,
    }


HEADLINE_DECIDER = "mfa_decider"


# -- the pre-PR-2 MFA Skolem chase, replicated -----------------------------
#
# A faithful copy of the decider loop this PR replaced: every round
# re-enumerates every rule body over the full instance (no delta), the
# seen-key set is rebuilt from scratch each round (so every historical
# trigger is re-keyed and its Skolem terms rebuilt and re-cycle-checked),
# and — the bug — facts are added while `homomorphisms` is still being
# enumerated.


def seed_skolem_chase(
    database: Instance,
    rules: Sequence[TGD],
    max_steps: int,
) -> Tuple[Instance, Optional[SkolemTerm], bool]:
    instance = Instance(database)
    steps = 0
    frontier: List[Atom] = list(instance)
    while frontier:
        new_round: List[Atom] = []
        seen_assignments = set()
        for index, rule in enumerate(rules):
            frontier_sorted = rule.frontier_sorted
            for assignment in homomorphisms(rule.body, instance):
                key = (
                    index,
                    tuple((v.name, assignment[v]) for v in frontier_sorted),
                )
                if key in seen_assignments:
                    continue
                seen_assignments.add(key)
                mapping = {v: assignment[v] for v in rule.frontier}
                for var in rule.existentials_sorted:
                    term = SkolemTerm(
                        (index, var.name),
                        tuple(assignment[v] for v in frontier_sorted),
                    )
                    if term.is_cyclic():
                        return instance, term, False
                    mapping[var] = term
                for head_atom in rule.head:
                    fact = head_atom.substitute(mapping)
                    if instance.add(fact):
                        new_round.append(fact)
                        steps += 1
                        if steps >= max_steps:
                            return instance, None, False
        frontier = new_round
    return instance, None, True


def run_mfa_decider(spec: Dict) -> Dict:
    """Delta-driven Skolem chase vs the pre-PR-2 replica.

    Both runs must reach the same verdict with the same number of
    facts — the replica doubles as a correctness check."""
    rules = spec["rules"]
    database = critical_instance(rules)

    start = time.perf_counter()
    instance, cyclic, fixpoint = skolem_chase(
        database, rules, spec["max_steps"]
    )
    wall = time.perf_counter() - start

    seed_start = time.perf_counter()
    seed_instance, seed_cyclic, seed_fixpoint = seed_skolem_chase(
        database, rules, spec["max_steps"]
    )
    seed_wall = time.perf_counter() - seed_start

    if fixpoint != seed_fixpoint or (cyclic is None) != (seed_cyclic is None):
        raise AssertionError(
            f"decider divergence on {spec['name']}: delta reported "
            f"(cyclic={cyclic}, fixpoint={fixpoint}), seed "
            f"(cyclic={seed_cyclic}, fixpoint={seed_fixpoint})"
        )
    if fixpoint and len(instance) != len(seed_instance):
        raise AssertionError(
            f"decider divergence on {spec['name']}: delta produced "
            f"{len(instance)} facts, seed {len(seed_instance)}"
        )
    return {
        "name": spec["name"],
        "rules": len(rules),
        "database_facts": len(database),
        "facts_final": len(instance),
        "mfa": fixpoint,
        "wall_s": round(wall, 6),
        "baseline_wall_s": round(seed_wall, 6),
        "speedup": round(seed_wall / wall, 2) if wall > 0 else None,
    }


def run_guarded_decider(spec: Dict) -> Dict:
    """Theorem 4 with compiled class-indexed pattern joins vs the
    retained naive scan; verdicts must agree."""
    rules = spec["rules"]

    start = time.perf_counter()
    indexed = decide_guarded(
        rules, spec["variant"], max_types=spec["max_types"]
    )
    wall = time.perf_counter() - start

    naive_start = time.perf_counter()
    naive = decide_guarded(
        rules,
        spec["variant"],
        max_types=spec["max_types"],
        pattern_engine="naive",
    )
    naive_wall = time.perf_counter() - naive_start

    if indexed.terminating != naive.terminating:
        raise AssertionError(
            f"decider divergence on {spec['name']}: indexed says "
            f"{indexed.terminating}, naive says {naive.terminating}"
        )
    return {
        "name": spec["name"],
        "rules": len(rules),
        "terminating": indexed.terminating,
        "types": indexed.stats.get("types"),
        "edges": indexed.stats.get("edges"),
        "pattern_joins": indexed.stats.get("pattern_joins"),
        "wall_s": round(wall, 6),
        "baseline_wall_s": round(naive_wall, 6),
        "speedup": round(naive_wall / wall, 2) if wall > 0 else None,
    }


DECIDERS = (
    (mfa_decider_scenario, run_mfa_decider),
    (guarded_decider_scenario, run_guarded_decider),
)


# -- round-batched executor scenarios --------------------------------------
#
# Each `*_parallel` row is serial-vs-batched on the same workload; the
# runs must be byte-identical (same fact tuple, same trigger keys), so
# every benchmark run doubles as an executor-equivalence check.


def _chase_fingerprint(result: ChaseResult) -> Tuple:
    return (
        result.instance.facts(),
        tuple(step.trigger.key(result.variant) for step in result.steps),
    )


def run_parallel_scenario(
    spec: Dict, scheduler: str, workers: int
) -> Dict:
    """Serial vs batched run of one chase scenario; raises on any
    divergence, records both walls and the speedup."""
    serial_start = time.perf_counter()
    serial = run_chase(
        spec["database"], spec["rules"], spec["variant"], spec["max_steps"]
    )
    serial_wall = time.perf_counter() - serial_start

    with RoundScheduler(scheduler, workers=workers) as sched:
        batched_start = time.perf_counter()
        batched = run_chase(
            spec["database"], spec["rules"], spec["variant"],
            spec["max_steps"], scheduler=sched,
        )
        batched_wall = time.perf_counter() - batched_start

    if _chase_fingerprint(serial) != _chase_fingerprint(batched):
        raise AssertionError(
            f"executor divergence on {spec['name']} under {scheduler}: "
            f"batched run is not byte-identical to serial"
        )
    return {
        "name": f"{spec['name']}_parallel",
        "scheduler": scheduler,
        "workers": workers,
        "variant": spec["variant"],
        "facts_final": len(batched.instance),
        "triggers_fired": batched.step_count,
        "serial_wall_s": round(serial_wall, 6),
        "batched_wall_s": round(batched_wall, 6),
        "speedup": round(serial_wall / batched_wall, 2)
        if batched_wall > 0 else None,
        "equivalent": True,
    }


def run_mfa_parallel(spec: Dict, workers: int) -> Dict:
    """Serial vs threaded vs spawn-process Skolem saturation — the
    CPU-bound run the ``process`` executor exists for.  All three must
    produce the same instance, witness, and fixpoint flag."""
    rules = spec["rules"]
    database = critical_instance(rules)

    serial_start = time.perf_counter()
    s_inst, s_cyc, s_fix = skolem_chase(database, rules, spec["max_steps"])
    serial_wall = time.perf_counter() - serial_start

    with RoundScheduler("threaded", workers=workers) as sched:
        t_start = time.perf_counter()
        t_inst, t_cyc, t_fix = skolem_chase(
            database, rules, spec["max_steps"], scheduler=sched
        )
        threaded_wall = time.perf_counter() - t_start

    with RoundScheduler("process", workers=workers) as sched:
        p_start = time.perf_counter()
        p_inst, p_cyc, p_fix = skolem_chase(
            database, rules, spec["max_steps"], scheduler=sched
        )
        process_wall = time.perf_counter() - p_start
        ship_stats = dict(sched.ship_stats)

    for label, inst, cyc, fix in (
        ("threaded", t_inst, t_cyc, t_fix),
        ("process", p_inst, p_cyc, p_fix),
    ):
        if (cyc, fix) != (s_cyc, s_fix) or inst.facts() != s_inst.facts():
            raise AssertionError(
                f"executor divergence on {spec['name']} under {label}"
            )
    return {
        "name": f"{spec['name']}_parallel",
        "workers": workers,
        "facts_final": len(s_inst),
        "mfa": s_fix,
        "serial_wall_s": round(serial_wall, 6),
        "threaded_wall_s": round(threaded_wall, 6),
        "process_wall_s": round(process_wall, 6),
        "speedup_threaded": round(serial_wall / threaded_wall, 2)
        if threaded_wall > 0 else None,
        "speedup_process": round(serial_wall / process_wall, 2)
        if process_wall > 0 else None,
        # Delta-only shipping: total int rows shipped to workers across
        # all rounds vs the rows the old ship-the-whole-instance
        # protocol would have pickled (Σ per-round instance sizes).
        "ship_rows": ship_stats.get("rows_shipped"),
        "ship_rounds": ship_stats.get("rounds"),
        "ship_full_syncs": ship_stats.get("full_ships"),
        "ship_resyncs": ship_stats.get("resyncs"),
        "ship_rows_old_protocol": ship_stats.get("rows_old_protocol"),
        "equivalent": True,
    }


DEFAULT_PARALLEL_WORKERS = 4


def run_parallel_suite(
    scale: float, workers: int = DEFAULT_PARALLEL_WORKERS
) -> List[Dict]:
    """All `*_parallel` rows for the report."""
    return [
        run_parallel_scenario(deep_chain_scenario(scale), "threaded",
                              workers),
        run_parallel_scenario(guarded_ontology_scenario(scale), "threaded",
                              workers),
        run_mfa_parallel(mfa_decider_scenario(scale), workers=2),
    ]


# -- query-side scenarios (PR 5) -------------------------------------------
#
# The read side of the pipeline: certain-answer CQ evaluation over a
# chase-grown universal model, and guarded atom entailment.  Each row
# carries its own before/after comparison — `cq_answering` against a
# faithful replica of the pre-PR-5 object-level ConjunctiveQuery path
# (`homomorphisms` + Term-tuple dedup + isinstance null filter), and
# `entailment` planner-on (cost ordering) against the retained
# heuristic ordering — and the baselines double as answer-set /
# verdict equality checks.


def _object_level_answers(answer_variables, atoms, instance):
    """Replica of the pre-PR-5 ``ConjunctiveQuery.answers`` path: the
    object-level join surface plus a ``Term``-tuple dedup set."""
    seen = set()
    for assignment in homomorphisms(atoms, instance):
        answer = tuple(assignment[v] for v in answer_variables)
        if answer not in seen:
            seen.add(answer)
            yield answer


def _object_level_certain(answer_variables, atoms, instance):
    """Replica of the pre-PR-5 ``certain_answers`` path."""
    out = [
        answer
        for answer in _object_level_answers(answer_variables, atoms, instance)
        if not any(isinstance(t, Null) for t in answer)
    ]
    return sorted(out, key=lambda tup: tuple(str(t) for t in tup))


def cq_answering_scenario(scale: float) -> Dict:
    """Certain-answer evaluation over the chased ``data_exchange``
    instance (a universal model with invented null keys/offices).

    The battery mixes the shapes certain-answer workloads are made of:
    a 1:1 join projecting to constant pairs (every match is an
    answer), a duplicate-heavy single-atom projection, a join whose
    duplicates the distinct-projection pushdown prunes, and an
    existence-style query (answers bound by the first atom, the rest
    of the join only witnessed).
    """
    exchange = data_exchange_scenario(scale)
    D, K, O = Variable("D"), Variable("K"), Variable("O")
    emp = Predicate("emp", 2)
    works = Predicate("works", 2)
    dkey = Predicate("dkey", 2)
    office = Predicate("office", 2)
    queries = [
        ConjunctiveQuery(
            [X, D], [Atom(works, [X, K]), Atom(dkey, [D, K])]
        ),
        ConjunctiveQuery([D], [Atom(emp, [X, D])]),
        ConjunctiveQuery(
            [D], [Atom(emp, [X, D]), Atom(works, [X, K])]
        ),
        ConjunctiveQuery(
            [D],
            [Atom(dkey, [D, K]), Atom(office, [K, O]),
             Atom(works, [X, K])],
        ),
    ]
    return {
        "name": "cq_answering",
        "chase": exchange,
        "queries": queries,
        "repeats": max(1, int(6 * scale)),
    }


def run_cq_answering(spec: Dict) -> Dict:
    """Int-native planner path vs the object-level replica on one
    universal model; answer sets must be identical."""
    chase_spec = spec["chase"]
    result = run_chase(
        chase_spec["database"], chase_spec["rules"], chase_spec["variant"],
        chase_spec["max_steps"],
    )
    instance = result.instance
    queries = spec["queries"]
    repeats = spec["repeats"]

    # Equality first (and plan-cache warmup as a side effect): the
    # planner path must reproduce the object-level answer sets exactly.
    answers_total = 0
    certain_total = 0
    for query in queries:
        planner_naive = set(query.answers(instance))
        planner_certain = query.certain_answers(instance)
        replica_naive = set(_object_level_answers(
            query.answer_variables, query.atoms, instance
        ))
        replica_certain = _object_level_certain(
            query.answer_variables, query.atoms, instance
        )
        if planner_naive != replica_naive:
            raise AssertionError(
                f"query divergence on {spec['name']}: naive answer sets "
                f"differ for {query}"
            )
        if planner_certain != replica_certain:
            raise AssertionError(
                f"query divergence on {spec['name']}: certain answers "
                f"differ for {query}"
            )
        answers_total += len(planner_naive)
        certain_total += len(planner_certain)

    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            query.certain_answers(instance)
    wall = time.perf_counter() - start

    baseline_start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            _object_level_certain(
                query.answer_variables, query.atoms, instance
            )
    baseline_wall = time.perf_counter() - baseline_start

    produced = certain_total * repeats
    return {
        "name": spec["name"],
        "facts": len(instance),
        "queries": len(queries),
        "repeats": repeats,
        "answers": answers_total,
        "certain_answers": certain_total,
        "wall_s": round(wall, 6),
        "baseline_wall_s": round(baseline_wall, 6),
        "rate_per_s": round(produced / wall, 1) if wall > 0 else None,
        "baseline_rate_per_s": round(produced / baseline_wall, 1)
        if baseline_wall > 0 else None,
        "speedup": round(baseline_wall / wall, 2) if wall > 0 else None,
        "equivalent": True,
    }


def entailment_scenario(scale: float) -> Dict:
    """Guarded atom entailment rooted at a concrete database, shaped
    so the two join-order policies genuinely diverge.

    Each rule joins a *wide* guard carrying a selective rule constant
    with a medium unconstrained relation: ``wide(X, Y, k_l), mid(X, Y)
    -> out_l(X, Y)``.  The syntactic heuristic orders by relation size
    and starts from ``mid`` (hundreds of candidate patterns per
    saturation pass); the cost planner sees that ``k_l``'s posting
    list holds 3 rows and starts there.  Verdicts are identical —
    only the join work differs.
    """
    n_wide = max(8, int(1500 * scale))
    n_mid = max(4, int(600 * scale))
    n_rules = max(2, int(10 * scale))
    fillers = [Constant(f"f{j}") for j in range(20)]
    wide = Predicate("wide", 3)
    mid = Predicate("mid", 2)
    database = Database()
    for i in range(n_wide):
        database.add(Atom(wide, [Constant(f"x{i}"), Constant(f"y{i}"),
                                 fillers[i % len(fillers)]]))
    for i in range(n_mid):
        database.add(Atom(mid, [Constant(f"x{i}"), Constant(f"y{i}")]))
    rules: List[TGD] = []
    for index in range(n_rules):
        k = Constant(f"k{index + 1}")
        # Three selectively tagged guard rows per rule constant.
        for j in range(3):
            row = index + j
            database.add(Atom(wide, [Constant(f"x{row}"),
                                     Constant(f"y{row}"), k]))
        rules.append(
            TGD(
                [Atom(wide, [X, Y, k]), Atom(mid, [X, Y])],
                [Atom(Predicate(f"out{index + 1}", 2), [X, Y])],
                label=f"sel{index + 1}",
            )
        )
    queries = [
        (Atom(Predicate("out1", 2), [Constant("x0"), Constant("y0")]),
         True),
        (Atom(Predicate(f"out{n_rules}", 2),
              [Constant(f"x{n_rules - 1}"), Constant(f"y{n_rules - 1}")]),
         n_rules - 1 < n_mid),
        (Atom(Predicate("out1", 2),
              [Constant(f"x{n_mid - 1}"), Constant(f"y{n_mid - 1}")]),
         n_mid - 1 < 3),
    ]
    return {
        "name": "entailment",
        "rules": rules,
        "database": database,
        "queries": queries,
    }


def run_entailment(spec: Dict) -> Dict:
    """Planner-on (cost ordering) vs heuristic-order entailment; every
    query must reach the same verdict under both policies.

    One untimed warmup pass per policy warms the shared cloud/body
    caches (:mod:`repro.termination.abstraction` memoizes pattern
    clouds by content), so neither timed run is charged for cache
    build work the other gets for free.
    """
    rules = spec["rules"]
    database = spec["database"]
    queries = spec["queries"]

    first_atom = queries[0][0]
    entails_atom(rules, database, first_atom, order_policy="cost")
    entails_atom(rules, database, first_atom, order_policy="heuristic")

    start = time.perf_counter()
    cost_verdicts = [
        entails_atom(rules, database, atom, order_policy="cost")
        for atom, _ in queries
    ]
    wall = time.perf_counter() - start

    baseline_start = time.perf_counter()
    heuristic_verdicts = [
        entails_atom(rules, database, atom, order_policy="heuristic")
        for atom, _ in queries
    ]
    baseline_wall = time.perf_counter() - baseline_start

    expected = [want for _, want in queries]
    if cost_verdicts != expected or heuristic_verdicts != expected:
        raise AssertionError(
            f"entailment divergence on {spec['name']}: expected "
            f"{expected}, cost planner said {cost_verdicts}, heuristic "
            f"said {heuristic_verdicts}"
        )
    checked = len(queries)
    return {
        "name": spec["name"],
        "rules": len(rules),
        "database_facts": len(database),
        "atoms_checked": checked,
        "entailed": sum(cost_verdicts),
        "wall_s": round(wall, 6),
        "baseline_wall_s": round(baseline_wall, 6),
        "rate_per_s": round(checked / wall, 1) if wall > 0 else None,
        "baseline_rate_per_s": round(checked / baseline_wall, 1)
        if baseline_wall > 0 else None,
        "speedup": round(baseline_wall / wall, 2) if wall > 0 else None,
        "equivalent": True,
    }


# -- batch execution tier (PR 10) ------------------------------------------


#: The batch kernels must beat the tuple engine by at least this
#: factor on their showcase workloads, or ``--check`` fails.
KERNEL_GATE_SPEEDUP = 2.0
#: Below this tuple-engine wall the workload is too fast to resolve a
#: 2x gate against host noise — and at reduced ``--scale`` the wcoj
#: scenario legitimately shrinks out of the asymptotic regime where
#: leapfrog wins (its edge grows with the instance).  The speedup gate
#: reports "skipped" below the floor; the full-scale recording still
#: measures and enforces it, and ``--check`` fails on a recording
#: whose gate did not hold.
KERNEL_MIN_WALL_S = 0.010
#: Interleaved best-of repeats per kernel arm.
KERNEL_REPEATS = 5


def _kernel_speedup_row(
    name, instance, query, fast_kernel, answers_must_match_order
):
    """Time ``query`` under the tuple engine vs ``fast_kernel`` on
    ``instance`` (interleaved best-of-``KERNEL_REPEATS``) after
    asserting answer equality — sequence equality for the order-exact
    vector kernel, set equality for wcoj.

    Equality is asserted on the user-facing decoded answers; the
    timed arms run in id space (``CompiledQuery.answer_ids``), which
    is the kernels' actual deliverable — decoding ids back to Terms
    is shared postprocessing, identical per answer on every kernel,
    and at full scale it would otherwise drown the join in the
    measurement."""
    from repro.query import numpy_active
    from repro.query.compiled import CompiledQuery

    tuple_answers = list(query.answers(instance, kernel="tuple"))
    fast_answers = list(query.answers(instance, kernel=fast_kernel))
    if answers_must_match_order:
        if fast_answers != tuple_answers:
            raise AssertionError(
                f"{name}: {fast_kernel} kernel broke order-exactness "
                f"against the tuple engine"
            )
    elif set(fast_answers) != set(tuple_answers):
        raise AssertionError(
            f"{name}: {fast_kernel} kernel answer set diverged from "
            f"the tuple engine"
        )

    tuple_compiled = CompiledQuery(
        query.answer_variables, query.atoms, kernel="tuple"
    )
    fast_compiled = CompiledQuery(
        query.answer_variables, query.atoms, kernel=fast_kernel
    )
    tuple_wall: Optional[float] = None
    fast_wall: Optional[float] = None
    for _ in range(KERNEL_REPEATS):
        start = time.perf_counter()
        list(tuple_compiled.answer_ids(instance))
        elapsed = time.perf_counter() - start
        if tuple_wall is None or elapsed < tuple_wall:
            tuple_wall = elapsed
        start = time.perf_counter()
        list(fast_compiled.answer_ids(instance))
        elapsed = time.perf_counter() - start
        if fast_wall is None or elapsed < fast_wall:
            fast_wall = elapsed

    speedup = round(tuple_wall / fast_wall, 2) if fast_wall > 0 else None
    if not numpy_active():
        # The pure-Python twins are correctness fallbacks, not perf
        # kernels; gating their speedup would gate the wrong thing.
        within_gate = None
    elif tuple_wall < KERNEL_MIN_WALL_S:
        within_gate = None
    else:
        within_gate = (
            speedup is not None and speedup >= KERNEL_GATE_SPEEDUP
        )
    produced = len(fast_answers)
    return {
        "name": name,
        "facts": len(instance),
        "kernel": fast_kernel,
        "numpy": numpy_active(),
        "answers": produced,
        "wall_s": round(fast_wall, 6),
        "baseline_wall_s": round(tuple_wall, 6),
        "rate_per_s": round(produced / fast_wall, 1)
        if fast_wall > 0 else None,
        "baseline_rate_per_s": round(produced / tuple_wall, 1)
        if tuple_wall > 0 else None,
        "speedup": speedup,
        "gate_speedup": KERNEL_GATE_SPEEDUP,
        "within_gate": within_gate,
        "equivalent": True,
    }


def vectorized_join_scenario(scale: float) -> Dict:
    """A fat chained hash join: ``fact(X, Y), dim(Y, Z), attr(Z, W)``
    where every probe hits and ``attr`` collapses the dim fan-out back
    to one label per hub.  The tuple engine pays Python interpreter
    overhead per intermediate match (40k enumerated, one set probe
    each, 8k survive); the vector kernel runs the same plan as a
    handful of array passes and dedups the projection at array speed
    (:func:`repro.query.kernels.run_batch_unique`)."""
    n_fact = max(50, int(8000 * scale))
    n_hub = max(4, int(40 * scale))
    fan_out = 5
    instance = Instance()
    fact = Predicate("fact", 2)
    dim = Predicate("dim", 2)
    attr = Predicate("attr", 2)
    for i in range(n_fact):
        instance.add(Atom(fact, [Constant(f"x{i}"),
                                 Constant(f"h{i % n_hub}")]))
    for h in range(n_hub):
        for j in range(fan_out):
            instance.add(Atom(dim, [Constant(f"h{h}"),
                                    Constant(f"z{h}_{j}")]))
            instance.add(Atom(attr, [Constant(f"z{h}_{j}"),
                                     Constant(f"a{h}")]))
    query = ConjunctiveQuery(
        [X, W],
        [Atom(fact, [X, Y]), Atom(dim, [Y, Z]), Atom(attr, [Z, W])],
    )
    return {
        "name": "vectorized_join",
        "instance": instance,
        "query": query,
    }


def run_vectorized_join(spec: Dict) -> Dict:
    """Tuple engine vs the vectorized hash-join kernel; the answer
    *sequences* must be identical (order-exactness is the property
    that lets the chase route discovery through this kernel)."""
    return _kernel_speedup_row(
        spec["name"], spec["instance"], spec["query"], "vector",
        answers_must_match_order=True,
    )


def wcoj_cyclic_scenario(scale: float) -> Dict:
    """Triangle counting where binary join plans blow up: a tripartite
    pattern ``u -> m -> w`` whose middle layer is fully shared (every
    ``u`` reaches every ``w`` through every ``m``, a quadratic two-path
    set) but only the planted ``w_p -> u_p`` edges close a triangle.
    The leapfrog kernel intersects away the dead two-paths."""
    n_pairs = max(6, int(64 * scale))
    n_mid = max(4, int(25 * scale))
    instance = Instance()
    e = Predicate("e", 2)
    for p in range(n_pairs):
        for m in range(n_mid):
            instance.add(Atom(e, [Constant(f"u{p}"), Constant(f"m{m}")]))
            instance.add(Atom(e, [Constant(f"m{m}"), Constant(f"w{p}")]))
    for p in range(n_pairs):
        instance.add(Atom(e, [Constant(f"w{p}"), Constant(f"u{p}")]))
    query = ConjunctiveQuery(
        [X, Y, Z],
        [Atom(e, [X, Y]), Atom(e, [Y, Z]), Atom(e, [Z, X])],
    )
    return {
        "name": "wcoj_cyclic",
        "instance": instance,
        "query": query,
    }


def run_wcoj_cyclic(spec: Dict) -> Dict:
    """Binary-plan tuple engine vs the leapfrog worst-case-optimal
    kernel on the cyclic triangle query; answer sets must be equal
    (wcoj enumerates in trie order, not DFS order)."""
    return _kernel_speedup_row(
        spec["name"], spec["instance"], spec["query"], "wcoj",
        answers_must_match_order=False,
    )


QUERY_SCENARIOS = (
    (cq_answering_scenario, run_cq_answering),
    (entailment_scenario, run_entailment),
    (vectorized_join_scenario, run_vectorized_join),
    (wcoj_cyclic_scenario, run_wcoj_cyclic),
)

HEADLINE_QUERY = "cq_answering"


# -- durable-store persistence (PR 7) --------------------------------------


def persistence_scenario(scale: float) -> Dict:
    """Durable-store round trip: the chased ``data_exchange`` universal
    model is saved, reopened (lazily), and then serves the
    ``cq_answering`` certain-answer battery without re-chasing."""
    cq = cq_answering_scenario(scale)
    return {
        "name": "persistence",
        "chase": cq["chase"],
        "queries": cq["queries"],
        "repeats": cq["repeats"],
    }


def run_persistence(spec: Dict) -> Dict:
    """Chase → save → reopen → query; the store-served answer sets
    must equal the in-memory ones (the row doubles as the durable
    round-trip correctness check)."""
    from repro.storage import open_instance, save_store

    chase_spec = spec["chase"]
    result = run_chase(
        chase_spec["database"], chase_spec["rules"], chase_spec["variant"],
        chase_spec["max_steps"],
    )
    queries = spec["queries"]
    expected = [query.certain_answers(result.instance) for query in queries]

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "store")
        start = time.perf_counter()
        save_store(result.instance._store, path)
        save_s = time.perf_counter() - start

        disk_bytes = sum(
            os.path.getsize(os.path.join(root, name))
            for root, _, names in os.walk(path)
            for name in names
        )

        start = time.perf_counter()
        reopened = open_instance(path)
        open_s = time.perf_counter() - start

        # The first pass hydrates the touched relations lazily and is
        # the equality check; the timed passes measure the steady state.
        answers = [query.certain_answers(reopened) for query in queries]
        if answers != expected:
            raise AssertionError(
                "persistence: certain answers over the reopened store "
                "diverged from the in-memory instance"
            )
        certain_total = sum(len(a) for a in answers)
        produced = certain_total * spec["repeats"]
        start = time.perf_counter()
        for _ in range(spec["repeats"]):
            for query in queries:
                query.certain_answers(reopened)
        wall = time.perf_counter() - start

    return {
        "name": spec["name"],
        "facts": len(result.instance),
        "disk_mb": round(disk_bytes / 1e6, 3),
        "save_s": round(save_s, 6),
        "open_s": round(open_s, 6),
        "queries": len(queries),
        "repeats": spec["repeats"],
        "certain_answers": certain_total,
        "query_wall_s": round(wall, 6),
        "rate_per_s": round(produced / wall, 1) if wall > 0 else None,
        "equivalent": True,
    }


# -- incremental maintenance / query server (PR 8) -------------------------


#: Incremental maintenance must beat re-chasing from scratch by at
#: least this factor on the growing-chain workload, or the gate fails.
SERVE_GATE_SPEEDUP = 2.0
#: Below this from-scratch wall the arms are too fast to resolve the
#: 2x gate against host noise; the gate reports "skipped".  The floor
#: is low because the asymmetry being gated is quadratic-vs-linear:
#: even at CI's --scale 0.25 the measured gap is ~10x, so a 2x gate
#: over a ~15 ms wall has an order of magnitude of noise headroom.
SERVE_MIN_WALL_S = 0.008
#: Concurrent reader threads for the throughput half of the row.
SERVE_READERS = 4


def serve_incremental_scenario(scale: float) -> Dict:
    """Transitive closure over a chain that grows one edge at a time:
    the adversarial case for re-chasing (each delta invalidates
    nothing, but a from-scratch run recomputes the whole quadratic
    closure) and the natural case for incremental maintenance (each
    leg derives only the new endpoint's paths)."""
    n = max(8, int(150 * scale))
    k = max(2, int(12 * scale))
    e, p = Predicate("e", 2), Predicate("p", 2)
    rules = [
        TGD([Atom(e, [X, Y])], [Atom(p, [X, Y])], label="base"),
        TGD([Atom(p, [X, Y]), Atom(e, [Y, Z])], [Atom(p, [X, Z])],
            label="compose"),
    ]
    database = Database(
        Atom(e, [Constant(f"c{i}"), Constant(f"c{i + 1}")])
        for i in range(n)
    )
    deltas = [
        [Atom(e, [Constant(f"c{n + j}"), Constant(f"c{n + j + 1}")])]
        for j in range(k)
    ]
    return {
        "name": "serve_incremental",
        "rules": rules,
        "database": database,
        "deltas": deltas,
        "variant": ChaseVariant.SEMI_OBLIVIOUS,
        "max_steps": 10_000_000,
        "query": "q(Y) :- p(c0, Y)",
    }


def run_serve_incremental(spec: Dict) -> Dict:
    """Two measurements on one workload:

    1. **Incremental vs from-scratch.**  Feed the deltas to a resident
       :class:`~repro.chase.incremental.ChaseSession` (timing only the
       ``extend`` legs) vs re-running ``run_chase`` on the union after
       every delta.  The final instances must have identical fact sets
       (the workload is null-free, so equality is exact), and the
       speedup is gated at ≥ :data:`SERVE_GATE_SPEEDUP`.
    2. **Queries/s under readers + writer.**  A
       :class:`~repro.serve.ChaseService` resident serves a CQ from
       :data:`SERVE_READERS` threads while one writer re-ingests the
       same delta schedule; the row records sustained queries/s (every
       answer set is consistency-checked by the snapshot tests, not
       here — this half only measures).
    """
    import threading

    from repro.chase.incremental import ChaseSession
    from repro.parser import parse_query
    from repro.serve import ChaseService

    rules, variant = spec["rules"], spec["variant"]
    deltas = spec["deltas"]

    # Arm 1: incremental maintenance.
    session = ChaseSession.start(
        Database(spec["database"].facts()), rules, variant=variant,
        max_steps=spec["max_steps"],
    )
    base_facts = session.watermark
    start = time.perf_counter()
    for delta in deltas:
        session.extend(delta)
    incremental_wall = time.perf_counter() - start
    incremental_facts = set(session.instance.facts())
    facts_final = session.watermark
    steps_final = session.step_count
    session.close()

    # Arm 2: from-scratch re-chase after every delta.
    union = Database(spec["database"].facts())
    start = time.perf_counter()
    for delta in deltas:
        for fact in delta:
            union.add(fact)
        scratch = run_chase(union, rules, variant, spec["max_steps"])
    full_wall = time.perf_counter() - start
    if set(scratch.instance.facts()) != incremental_facts:
        raise AssertionError(
            "serve_incremental: incremental maintenance diverged from "
            "the from-scratch chase of the union"
        )

    speedup = (
        round(full_wall / incremental_wall, 2)
        if incremental_wall > 0 else None
    )
    measurable = full_wall >= SERVE_MIN_WALL_S
    within_gate = (
        (speedup is not None and speedup >= SERVE_GATE_SPEEDUP)
        if measurable else None
    )

    # Arm 3: sustained reads under a concurrent writer.
    session = ChaseSession.start(
        Database(spec["database"].facts()), rules, variant=variant,
        max_steps=spec["max_steps"],
    )
    service = ChaseService(request_timeout_s=None)
    service.add_session("default", session)
    query_text = spec["query"]
    served = [0] * SERVE_READERS
    done = threading.Event()

    def reader(slot):
        while not done.is_set():
            service.query(query_text)
            served[slot] += 1

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(SERVE_READERS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    try:
        for delta in deltas:
            service.ingest(
                [f"{f.predicate.name}({', '.join(map(str, f.terms))})"
                 for f in delta]
            )
    finally:
        done.set()
        for thread in threads:
            thread.join()
    serve_wall = time.perf_counter() - start
    service.close()
    queries_served = sum(served)

    return {
        "name": spec["name"],
        "variant": variant,
        "base_facts": base_facts,
        "deltas": len(deltas),
        "facts_final": facts_final,
        "triggers_fired": steps_final,
        "incremental_wall_s": round(incremental_wall, 6),
        "full_rechase_wall_s": round(full_wall, 6),
        "speedup": speedup,
        "gate_speedup": SERVE_GATE_SPEEDUP,
        "within_gate": within_gate,
        "readers": SERVE_READERS,
        "queries_served": queries_served,
        "queries_per_s": round(queries_served / serve_wall, 1)
        if serve_wall > 0 else None,
        "equivalent": True,
    }


# -- overload shedding + WAL overhead (PR 9) --------------------------------


#: Service-wide admission slots for the overload arm; clients run at
#: 2x this (closed-loop), so roughly half the offered load must shed.
OVERLOAD_CAP = 4
#: Closed-loop HTTP clients (2x the admission slots).
OVERLOAD_CLIENTS = 8
#: The ``slow_accept`` fault pins every admitted request to this
#: service time, making capacity (and therefore the shed rate)
#: deterministic instead of a function of host speed.
OVERLOAD_SLOW_S = 0.02
#: How long the clients hammer the server.
OVERLOAD_DURATION_S = 1.0
#: The write-ahead ingest journal may cost at most this much wall over
#: journal-less durable ingest, or the gate fails.
WAL_GATE_PCT = 10.0
#: Below this journal-less total wall the fixed per-append cost (one
#: open + fsync, ~1 ms) dominates any ratio and the gate reports
#: "skipped" — same idiom as the other noise floors above.
WAL_MIN_WALL_S = 0.08
#: Interleaved repetitions; the overhead is computed from per-leg
#: minima so one slow fsync cannot swing the ratio.
WAL_REPS = 3


def serve_overload_scenario(scale: float) -> Dict:
    """Two arms over one chain-closure resident:

    1. **Shedding at 2x capacity** — 8 closed-loop HTTP clients
       against 4 admission slots, with every admitted request pinned
       to ``OVERLOAD_SLOW_S`` service time by the ``slow_accept``
       fault: the excess must shed with 503 + ``Retry-After`` while
       every accepted answer stays correct.
    2. **WAL fsync overhead** — the same durable ingest schedule with
       and without the write-ahead journal attached, gated ≤10%.
    """
    e, p = Predicate("e", 2), Predicate("p", 2)
    rules = [
        TGD([Atom(e, [X, Y])], [Atom(p, [X, Y])], label="base"),
        TGD([Atom(p, [X, Y]), Atom(e, [Y, Z])], [Atom(p, [X, Z])],
            label="compose"),
    ]
    overload_n = max(10, int(30 * scale))
    wal_n = max(80, int(400 * scale))
    wal_width, wal_deltas = 12, 6
    return {
        "name": "serve_overload",
        "rules": rules,
        "variant": ChaseVariant.SEMI_OBLIVIOUS,
        "max_steps": 10_000_000,
        "overload_n": overload_n,
        "duration_s": max(0.3, OVERLOAD_DURATION_S * min(1.0, scale * 2)),
        "query": "q(Y) :- p(c0, Y)",
        "wal_n": wal_n,
        "wal_deltas": [
            [Atom(e, [Constant(f"c{wal_n + j * wal_width + t}"),
                      Constant(f"c{wal_n + j * wal_width + t + 1}")])
             for t in range(wal_width)]
            for j in range(wal_deltas)
        ],
    }


def _chain_database(n: int) -> Database:
    e = Predicate("e", 2)
    return Database(
        Atom(e, [Constant(f"c{i}"), Constant(f"c{i + 1}")])
        for i in range(n)
    )


def _run_overload_arm(spec: Dict) -> Dict:
    """Closed-loop HTTP clients at 2x the admission slots."""
    import http.client
    import threading

    from repro.chase.incremental import ChaseSession
    from repro.serve import AdmissionController, BackgroundServer, \
        ChaseService

    session = ChaseSession.start(
        _chain_database(spec["overload_n"]), spec["rules"],
        variant=spec["variant"], max_steps=spec["max_steps"],
    )
    service = ChaseService(
        request_timeout_s=None,
        admission=AdmissionController(max_inflight=OVERLOAD_CAP),
    )
    service.add_session("default", session)
    expected = sorted(service.query(spec["query"])["answers"])

    accepted = [0] * OVERLOAD_CLIENTS
    shed = [0] * OVERLOAD_CLIENTS
    retry_hints = [0] * OVERLOAD_CLIENTS
    wrong: List[str] = []
    body = json.dumps({"query": spec["query"]})
    saved_faults = os.environ.get("REPRO_FAULTS")
    os.environ["REPRO_FAULTS"] = f"slow_accept:{OVERLOAD_SLOW_S}"
    try:
        with BackgroundServer(service) as server:
            host, port = server.address
            deadline = (
                time.perf_counter() + spec["duration_s"]
            )

            def client(slot: int) -> None:
                while time.perf_counter() < deadline:
                    conn = http.client.HTTPConnection(
                        host, port, timeout=30
                    )
                    try:
                        conn.request(
                            "POST", "/query", body=body,
                            headers={
                                "Content-Type": "application/json"
                            },
                        )
                        response = conn.getresponse()
                        data = json.loads(response.read())
                    finally:
                        conn.close()
                    if response.status == 200:
                        accepted[slot] += 1
                        if sorted(data["answers"]) != expected:
                            wrong.append(str(data))
                    else:
                        shed[slot] += 1
                        if response.getheader("Retry-After"):
                            retry_hints[slot] += 1
                        time.sleep(0.005)  # polite-ish client

            start = time.perf_counter()
            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(OVERLOAD_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
    finally:
        if saved_faults is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = saved_faults
        service.close()

    if wrong:
        raise AssertionError(
            f"serve_overload: accepted request answered incorrectly "
            f"under load: {wrong[0]}"
        )
    total_accepted, total_shed = sum(accepted), sum(shed)
    if total_shed and sum(retry_hints) != total_shed:
        raise AssertionError(
            "serve_overload: a shed response was missing Retry-After"
        )
    return {
        "clients": OVERLOAD_CLIENTS,
        "max_inflight": OVERLOAD_CAP,
        "accepted": total_accepted,
        "shed": total_shed,
        "shed_rate": round(
            total_shed / (total_accepted + total_shed), 3
        ) if (total_accepted + total_shed) else None,
        "accepted_per_s": round(total_accepted / wall, 1)
        if wall > 0 else None,
    }


class _TimedJournal:
    """Delegating journal proxy that accumulates the wall spent in the
    durability calls (``append_delta``'s encode+write+fsync and
    ``append_ack``).  Timing the journal *inside* the journaled legs
    pairs numerator and denominator on the same run, so chase-leg
    noise cancels — a differenced plain-vs-journaled comparison at
    this leg size (~60ms) swings +-7% run to run, swamping the ~1-3%
    true cost."""

    def __init__(self, inner):
        self.inner = inner
        self.wall = 0.0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def append_delta(self, *args, **kwargs):
        tick = time.perf_counter()
        try:
            return self.inner.append_delta(*args, **kwargs)
        finally:
            self.wall += time.perf_counter() - tick

    def append_ack(self, *args, **kwargs):
        tick = time.perf_counter()
        try:
            return self.inner.append_ack(*args, **kwargs)
        finally:
            self.wall += time.perf_counter() - tick


def _run_wal_arm(spec: Dict) -> Dict:
    """Journaled vs journal-less durable ingest.

    Both arms run (interleaved) and must converge to the same
    watermark; the recorded walls are informational.  The gated
    overhead is the *paired* measurement: time inside the journal's
    durability calls over the journaled legs' chase time."""
    import shutil
    import tempfile

    from repro.chase.incremental import ChaseSession
    from repro.serve import ChaseService

    deltas = spec["wal_deltas"]

    with tempfile.TemporaryDirectory() as tmp:
        template = os.path.join(tmp, "template")
        seed = ChaseSession.start(
            _chain_database(spec["wal_n"]), spec["rules"],
            variant=spec["variant"], max_steps=spec["max_steps"],
            save=template,
        )
        final_facts = None
        journal_wall = 0.0

        def legs(journal: bool, rep: int) -> float:
            nonlocal final_facts, journal_wall
            store = os.path.join(
                tmp, f"{'wal' if journal else 'plain'}-{rep}"
            )
            shutil.copytree(template, store)
            service = ChaseService(request_timeout_s=None)
            resident = service.add_session(
                "default", ChaseSession.resume(store), journal=journal,
            )
            timer = None
            if journal:
                timer = _TimedJournal(resident.journal)
                resident.journal = timer
            wall = 0.0
            # Collector pauses alias onto whole legs (a cycle landing
            # in one arm but not the other skews a ~60ms leg by 2-3x);
            # collect up front and keep gc off while the clock runs.
            gc.collect()
            gc.disable()
            try:
                for index, delta in enumerate(deltas):
                    texts = [
                        f"{f.predicate.name}"
                        f"({', '.join(map(str, f.terms))})"
                        for f in delta
                    ]
                    tick = time.perf_counter()
                    out = service.ingest(texts, ingest_id=f"d{index}")
                    wall += time.perf_counter() - tick
                watermark = out["watermark"]
                if final_facts is None:
                    final_facts = watermark
                elif watermark != final_facts:
                    raise AssertionError(
                        f"serve_overload: journaled and journal-less "
                        f"ingest diverged ({watermark} != {final_facts})"
                    )
            finally:
                gc.enable()
                if timer is not None:
                    journal_wall += timer.wall
                service.close()
            return wall

        seed.close()
        plain_walls, wal_walls = [], []
        for rep in range(WAL_REPS):
            plain_walls.append(legs(False, rep))
            wal_walls.append(legs(True, rep))

    plain_wall = min(plain_walls)
    wal_wall = min(wal_walls)
    chase_wall = sum(wal_walls) - journal_wall
    overhead_pct = (
        round(journal_wall / chase_wall * 100, 2)
        if chase_wall > 0 else None
    )
    measurable = chase_wall >= WAL_MIN_WALL_S
    within = (
        (overhead_pct is not None and overhead_pct <= WAL_GATE_PCT)
        if measurable else None
    )
    return {
        "wal_deltas": len(deltas),
        "wal_plain_wall_s": round(plain_wall, 6),
        "wal_journal_wall_s": round(wal_wall, 6),
        "wal_fsync_wall_s": round(journal_wall, 6),
        "wal_overhead_pct": overhead_pct,
        "wal_gate_pct": WAL_GATE_PCT,
        "wal_within_gate": within,
    }


def run_serve_overload(spec: Dict) -> Dict:
    """The PR 9 robustness row: overload shedding + WAL overhead (see
    :func:`serve_overload_scenario`).  Raises on any correctness
    violation (wrong accepted answer, missing Retry-After, journaled
    vs journal-less divergence); the timing halves are recorded and
    gated by ``--check``."""
    row: Dict = {"name": spec["name"], "variant": spec["variant"]}
    row.update(_run_overload_arm(spec))
    row.update(_run_wal_arm(spec))
    row["equivalent"] = True
    return row


# -- runtime-governance overhead (PR 6) ------------------------------------


FAULT_GATE_PCT = 5.0
#: Interleaved repeats per arm.  The headline wall is ~20 ms, so a 5%
#: delta is ~1 ms — best-of-5 still carries scheduler noise of that
#: order; best-of-21 tightens both mins enough that the residual
#: noise lands in :data:`FAULT_NOISE_S`, not the verdict.
FAULT_RECOVERY_REPEATS = 21
#: Below this wall the headline run is too fast to resolve a 5%
#: delta against host noise; the gate reports "skipped" instead of a
#: coin-flip verdict (the full-scale recording still measures it).
FAULT_MIN_WALL_S = 0.005
#: Additive wall-clock allowance for the gate.  The two best-of mins
#: are taken over *separate* samples, so their difference still
#: carries ~0.5-1 ms of scheduler/frequency jitter on a ~20 ms
#: scenario — measured sample spread on an idle host crosses the pure
#: 5% ratio line both ways.  Like :data:`WS_SLACK_MB` for the memory
#: ceiling, a small absolute floor keeps the ratio gate from being a
#: coin flip while staying far below any real governance regression
#: (an always-on per-step probe costs tens of ms here).
FAULT_NOISE_S = 0.001


def run_fault_recovery(scale: float) -> Dict:
    """Budget-check overhead on the headline chase scenario.

    The governed arm runs ``deep_chain`` under a :class:`repro.Budget`
    with generous limits — every check executes (deadline clock, fact
    cap, throttled memory probe), none trips — against the ungoverned
    engine.  Arms are interleaved and the walls are best-of-``N`` so
    host noise hits both equally.  The gate is ≤``FAULT_GATE_PCT``%
    overhead; governance must be effectively free when it never fires.
    """
    from repro.runtime import Budget

    spec = deep_chain_scenario(scale)

    def make_budget():
        return Budget(
            timeout_s=3600.0,
            max_rounds=10**9,
            max_facts=10**12,
            max_memory_mb=float(1 << 20),
        )

    def governed():
        return run_chase(
            spec["database"], spec["rules"], spec["variant"],
            spec["max_steps"], budget=make_budget(),
        )

    def ungoverned():
        return run_chase(
            spec["database"], spec["rules"], spec["variant"],
            spec["max_steps"],
        )

    # Warmup both arms; the governed run must not change the result.
    base_result = ungoverned()
    gov_result = governed()
    if gov_result.instance.facts() != base_result.instance.facts():
        raise AssertionError(
            "fault_recovery: governed run diverged from ungoverned"
        )
    if gov_result.stop_reason != "fixpoint":
        raise AssertionError(
            f"fault_recovery: generous budget tripped "
            f"({gov_result.stop_reason})"
        )

    base_wall: Optional[float] = None
    gov_wall: Optional[float] = None
    for _ in range(FAULT_RECOVERY_REPEATS):
        start = time.perf_counter()
        ungoverned()
        elapsed = time.perf_counter() - start
        if base_wall is None or elapsed < base_wall:
            base_wall = elapsed
        start = time.perf_counter()
        governed()
        elapsed = time.perf_counter() - start
        if gov_wall is None or elapsed < gov_wall:
            gov_wall = elapsed

    overhead_pct = (
        round((gov_wall - base_wall) / base_wall * 100.0, 2)
        if base_wall > 0 else None
    )
    measurable = base_wall >= FAULT_MIN_WALL_S
    # Ratio gate with an additive noise floor (see FAULT_NOISE_S).
    allowance = FAULT_GATE_PCT / 100.0 * base_wall + FAULT_NOISE_S
    within_gate = (
        (overhead_pct is not None
         and (gov_wall - base_wall) <= allowance)
        if measurable else None
    )
    return {
        "name": "fault_recovery",
        "scenario": spec["name"],
        "facts_final": len(gov_result.instance),
        "budget_checks": gov_result.resource.get("budget_checks"),
        "ungoverned_wall_s": round(base_wall, 6),
        "governed_wall_s": round(gov_wall, 6),
        "overhead_pct": overhead_pct,
        "gate_pct": FAULT_GATE_PCT,
        "within_gate": within_gate,
        "equivalent": True,
    }


# -- the CI regression gate ------------------------------------------------


#: Additive headroom for the working-set ceiling.  RSS moves in pages
#: and arena-sized chunks, so at small ``--scale`` (CI runs at 0.25)
#: the measured growth is a few MB of mostly allocator granularity; a
#: pure ratio gate on that would be a coin flip.  The slack is far
#: below any real spill regression at recording scale.
WS_SLACK_MB = 32.0


def check_against(
    baseline: Dict,
    scale: float,
    ratio: float = 0.5,
    mem_ratio: float = 2.0,
) -> Tuple[bool, List[str]]:
    """Re-measure every recorded chase scenario and compare rates and
    peak memory.

    Returns ``(ok, report_lines)``; ``ok`` is False iff some
    scenario's measured ``facts_per_s`` fell below ``ratio`` times the
    recorded value, or its memory rose above ``mem_ratio`` times the
    recorded value pro-rated by the scale ratio (fact counts — and
    with them the columnar core's allocations — grow linearly in
    ``--scale``; the 2× headroom absorbs the sublinear fixed costs).
    The memory gate prefers the ``working_set_mb`` column (real RSS
    growth, measured in a fresh child — the only probe that sees
    mmap'd durable segments) plus :data:`WS_SLACK_MB` of page-noise
    headroom, falling back to the traced ``peak_mem_mb`` ceiling for
    older recordings; it is skipped when neither column is present on
    both sides.  Rates, not walls, are compared so the gate tolerates
    running at a smaller ``--scale`` than the recording.

    A recorded ``persistence`` row is gated on its ``rate_per_s``
    (certain answers/s served from the reopened store); re-measuring
    it re-runs the save → reopen answer-equality check.

    Recorded *query* rows (``cq_answering`` / ``entailment``) are
    gated the same way on their ``rate_per_s`` — and re-measuring them
    re-runs their built-in answer-set / verdict equality checks, so a
    gate pass also re-proves planner-vs-object-level equivalence.
    """
    recorded = {
        row["name"]: row
        for row in baseline.get("scenarios", [])
        if row.get("facts_per_s")
    }
    recorded_scale = baseline.get("scale")
    # Build each scenario once, at the measurement scale.
    specs = {spec["name"]: spec for spec in (m(scale) for m in SCENARIOS)}
    ok = True
    lines = []
    for name, row in recorded.items():
        spec = specs.get(name)
        if spec is None:
            ok = False
            lines.append(f"FAIL {name}: recorded scenario no longer exists")
            continue
        measured = run_scenario(spec)
        rate, floor = measured["facts_per_s"], row["facts_per_s"] * ratio
        status = "ok  " if rate >= floor else "FAIL"
        if rate < floor:
            ok = False
        lines.append(
            f"{status} {name}: {rate:.1f} facts/s vs recorded "
            f"{row['facts_per_s']:.1f} (floor {floor:.1f} at "
            f"ratio {ratio})"
        )
        scale_ratio = scale / recorded_scale if recorded_scale else 1.0
        recorded_ws = row.get("working_set_mb")
        measured_ws = measured.get("working_set_mb")
        recorded_peak = row.get("peak_mem_mb")
        measured_peak = measured.get("peak_mem_mb")
        if recorded_ws and measured_ws is not None:
            # The real gate: resident-set growth, which sees the mmap'd
            # and array-backed allocations tracemalloc cannot.  The
            # additive slack absorbs page-granular noise at small
            # --scale, where the run's footprint is a handful of MB.
            ceiling = recorded_ws * mem_ratio * scale_ratio + WS_SLACK_MB
            mem_status = "ok  " if measured_ws <= ceiling else "FAIL"
            if measured_ws > ceiling:
                ok = False
            lines.append(
                f"{mem_status} {name}: working-set peak {measured_ws:.3f} "
                f"MB vs recorded {recorded_ws:.3f} (ceiling {ceiling:.3f} "
                f"at ratio {mem_ratio} + {WS_SLACK_MB} MB slack)"
            )
        elif recorded_peak and measured_peak is not None:
            # Recordings made before the working-set column (or hosts
            # without an RSS probe) fall back to the traced peak.
            ceiling = recorded_peak * mem_ratio * scale_ratio
            mem_status = "ok  " if measured_peak <= ceiling else "FAIL"
            if measured_peak > ceiling:
                ok = False
            lines.append(
                f"{mem_status} {name}: peak {measured_peak:.3f} MB vs "
                f"recorded {recorded_peak:.3f} (ceiling {ceiling:.3f} "
                f"at ratio {mem_ratio})"
            )
    fault_row = baseline.get("fault_recovery")
    if fault_row:
        measured = run_fault_recovery(scale)
        within = measured["within_gate"]
        if within is None:
            lines.append(
                f"skip fault_recovery: wall "
                f"{measured['ungoverned_wall_s']}s below "
                f"{FAULT_MIN_WALL_S}s noise floor at this scale"
            )
        else:
            if not within:
                ok = False
            lines.append(
                f"{'ok  ' if within else 'FAIL'} fault_recovery: "
                f"{measured['overhead_pct']}% governed overhead "
                f"(gate {FAULT_GATE_PCT}%)"
            )
    persistence_row = baseline.get("persistence")
    if persistence_row and persistence_row.get("rate_per_s"):
        # Re-measuring re-runs the save/reopen answer-equality check.
        measured = run_persistence(persistence_scenario(scale))
        rate = measured["rate_per_s"]
        floor = persistence_row["rate_per_s"] * ratio
        status = "ok  " if rate >= floor else "FAIL"
        if rate < floor:
            ok = False
        lines.append(
            f"{status} persistence: {rate:.1f} answers/s over the "
            f"reopened store vs recorded "
            f"{persistence_row['rate_per_s']:.1f} (floor {floor:.1f} at "
            f"ratio {ratio})"
        )
    serve_row = baseline.get("serve_incremental")
    if serve_row:
        measured = run_serve_incremental(serve_incremental_scenario(scale))
        within = measured["within_gate"]
        if within is None:
            lines.append(
                f"skip serve_incremental: re-chase wall "
                f"{measured['full_rechase_wall_s']}s below "
                f"{SERVE_MIN_WALL_S}s noise floor at this scale"
            )
        else:
            if not within:
                ok = False
            lines.append(
                f"{'ok  ' if within else 'FAIL'} serve_incremental: "
                f"{measured['speedup']}x incremental-vs-re-chase "
                f"(gate {SERVE_GATE_SPEEDUP}x)"
            )
        recorded_qps = serve_row.get("queries_per_s")
        measured_qps = measured.get("queries_per_s")
        if recorded_qps and measured_qps is not None:
            floor = recorded_qps * ratio
            status = "ok  " if measured_qps >= floor else "FAIL"
            if measured_qps < floor:
                ok = False
            lines.append(
                f"{status} serve_incremental: {measured_qps:.1f} "
                f"queries/s under {measured['readers']} readers vs "
                f"recorded {recorded_qps:.1f} (floor {floor:.1f} at "
                f"ratio {ratio})"
            )
    overload_row = baseline.get("serve_overload")
    if overload_row:
        measured = run_serve_overload(serve_overload_scenario(scale))
        within = measured["wal_within_gate"]
        if within is None:
            lines.append(
                f"skip serve_overload: journaled chase wall below "
                f"{WAL_MIN_WALL_S}s noise floor at this scale"
            )
        else:
            if not within:
                ok = False
            lines.append(
                f"{'ok  ' if within else 'FAIL'} serve_overload: "
                f"{measured['wal_overhead_pct']}% WAL overhead "
                f"(gate {WAL_GATE_PCT}%)"
            )
        recorded_aps = overload_row.get("accepted_per_s")
        measured_aps = measured.get("accepted_per_s")
        if recorded_aps and measured_aps is not None:
            floor = recorded_aps * ratio
            status = "ok  " if measured_aps >= floor else "FAIL"
            if measured_aps < floor:
                ok = False
            lines.append(
                f"{status} serve_overload: {measured_aps:.1f} accepted/s "
                f"at 2x capacity (shed rate {measured['shed_rate']}) vs "
                f"recorded {recorded_aps:.1f} (floor {floor:.1f} at "
                f"ratio {ratio})"
            )
    query_rows = [
        row for row in baseline.get("queries", [])
        if row.get("rate_per_s")
    ]
    query_runners = {}
    if query_rows:
        # Build each scenario spec once (the builders materialize whole
        # databases) and only when the recording carries query rows.
        for make, run in QUERY_SCENARIOS:
            spec = make(scale)
            query_runners[spec["name"]] = (spec, run)
    for row in query_rows:
        name = row.get("name")
        entry = query_runners.get(name)
        if entry is None:
            ok = False
            lines.append(f"FAIL {name}: recorded query scenario no longer "
                         "exists")
            continue
        spec, run = entry
        measured = run(spec)
        rate, floor = measured["rate_per_s"], row["rate_per_s"] * ratio
        status = "ok  " if rate >= floor else "FAIL"
        if rate < floor:
            ok = False
        lines.append(
            f"{status} {name}: {rate:.1f} answers/s vs recorded "
            f"{row['rate_per_s']:.1f} (floor {floor:.1f} at ratio {ratio})"
        )
        # Kernel rows additionally gate their speedup over the tuple
        # engine: the recording itself must have met the gate, and the
        # gate must still hold when re-measured at a scale large
        # enough to resolve it.
        if row.get("gate_speedup"):
            if row.get("within_gate") is False:
                ok = False
                lines.append(
                    f"FAIL {name}: recorded report itself missed the "
                    f"speedup gate ({row.get('speedup')}x < "
                    f"{row['gate_speedup']}x) — regenerate the "
                    f"recording at full scale"
                )
            within = measured.get("within_gate")
            if within is None:
                reason = (
                    "pure-Python kernels"
                    if not measured.get("numpy")
                    else f"wall below {KERNEL_MIN_WALL_S}s noise floor"
                )
                lines.append(
                    f"skip {name} speedup gate: {reason} at this scale"
                )
            else:
                if not within:
                    ok = False
                lines.append(
                    f"{'ok  ' if within else 'FAIL'} {name}: "
                    f"{measured['speedup']}x over tuple kernel "
                    f"(gate {row['gate_speedup']}x)"
                )
    if not recorded:
        ok = False
        lines.append("FAIL: baseline report contains no rated scenarios")
    return ok, lines


# -- measurement -----------------------------------------------------------


_WORKING_SET_CHILD = r"""
import pickle, sys
from repro.chase import run_chase
from repro.runtime.budget import working_set_bytes

with open(sys.argv[1], "rb") as handle:
    spec = pickle.load(handle)
before = working_set_bytes()
run_chase(spec["database"], spec["rules"], spec["variant"],
          spec["max_steps"])
after = working_set_bytes()
print(-1 if before is None or after is None else max(0, after - before))
"""


def measure_working_set(spec: Dict) -> Optional[int]:
    """Resident-set growth (bytes) of one chase run, measured in a
    fresh child interpreter.

    tracemalloc only sees allocations that cross the Python tracer;
    mmap'd durable-store segments and ``array`` buffers land in the
    process working set without ever doing so.  The child starts from
    a clean heap, so the before/after RSS delta is attributable to the
    run — in-process deltas are erased by allocator page reuse between
    scenarios.  Returns ``None`` where no RSS probe is available
    (see :func:`repro.runtime.budget.working_set_bytes`).
    """
    import repro

    src_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = os.path.join(tmp, "spec.pkl")
        with open(spec_path, "wb") as handle:
            pickle.dump(
                {key: spec[key]
                 for key in ("database", "rules", "variant", "max_steps")},
                handle,
            )
        probe = subprocess.run(
            [sys.executable, "-c", _WORKING_SET_CHILD, spec_path],
            capture_output=True, text=True, env=env,
        )
    if probe.returncode != 0:
        raise AssertionError(
            f"working-set probe failed for {spec['name']}: {probe.stderr}"
        )
    delta = int(probe.stdout.strip())
    return None if delta < 0 else delta


def measure_peak_memory(spec: Dict) -> int:
    """Peak traced allocation (bytes) of one untimed chase run.

    Runs the scenario a second time under :mod:`tracemalloc` —
    tracing slows execution severalfold, so the timed run and the
    memory run are kept strictly separate.
    """
    import tracemalloc

    tracemalloc.start()
    try:
        run_chase(
            spec["database"], spec["rules"], spec["variant"],
            spec["max_steps"],
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


SCENARIO_REPEATS = 3


def run_scenario(spec: Dict, measure_memory: bool = True) -> Dict:
    """Run one scenario through the indexed engine and report rates
    plus (in a separate traced run) peak memory.

    An untimed warmup run precedes the measurement, and the recorded
    wall is the best of :data:`SCENARIO_REPEATS` runs — the ``timeit``
    convention: the minimum measures the engine, larger values measure
    the host's background noise.  Steady-state rates, not first-touch
    interpreter effects, are what the regression gate tracks.
    """
    run_chase(
        spec["database"], spec["rules"], spec["variant"], spec["max_steps"]
    )
    wall = None
    result: Optional[ChaseResult] = None
    for _ in range(SCENARIO_REPEATS):
        start = time.perf_counter()
        result = run_chase(
            spec["database"], spec["rules"], spec["variant"],
            spec["max_steps"],
        )
        elapsed = time.perf_counter() - start
        if wall is None or elapsed < wall:
            wall = elapsed
    facts_final = len(result.instance)
    facts_created = facts_final - len(spec["database"])
    triggers = result.step_count
    peak = measure_peak_memory(spec) if measure_memory else None
    working = measure_working_set(spec) if measure_memory else None
    return {
        "name": spec["name"],
        "variant": spec["variant"],
        "database_facts": len(spec["database"]),
        "facts_final": facts_final,
        "facts_created": facts_created,
        "triggers_fired": triggers,
        "terminated": result.terminated,
        "wall_s": round(wall, 6),
        "facts_per_s": round(facts_created / wall, 1) if wall > 0 else None,
        "triggers_per_s": round(triggers / wall, 1) if wall > 0 else None,
        "peak_mem_mb": round(peak / 1e6, 3) if peak is not None else None,
        "working_set_mb": round(working / 1e6, 3)
        if working is not None else None,
    }


def run_baseline_comparison(spec: Dict) -> Dict:
    """Indexed engine vs the seed-engine replica on one scenario.

    Both runs must produce the same number of facts and fire the same
    number of triggers — the replica is a correctness check as well as
    a baseline.
    """
    indexed_start = time.perf_counter()
    indexed = run_chase(
        spec["database"], spec["rules"], spec["variant"], spec["max_steps"]
    )
    indexed_wall = time.perf_counter() - indexed_start

    seed_start = time.perf_counter()
    seed_instance, seed_steps, seed_terminated = seed_chase(
        spec["database"], spec["rules"], spec["variant"], spec["max_steps"]
    )
    seed_wall = time.perf_counter() - seed_start

    if len(indexed.instance) != len(seed_instance):
        raise AssertionError(
            f"engine divergence on {spec['name']}: indexed produced "
            f"{len(indexed.instance)} facts, seed {len(seed_instance)}"
        )
    if indexed.step_count != seed_steps:
        raise AssertionError(
            f"engine divergence on {spec['name']}: indexed fired "
            f"{indexed.step_count} triggers, seed {seed_steps}"
        )
    return {
        "scenario": spec["name"],
        "variant": spec["variant"],
        "facts_final": len(indexed.instance),
        "triggers_fired": indexed.step_count,
        "indexed_wall_s": round(indexed_wall, 6),
        "seed_wall_s": round(seed_wall, 6),
        "speedup": round(seed_wall / indexed_wall, 2)
        if indexed_wall > 0 else None,
    }


def run_suite(scale: float = 1.0, compare: bool = True) -> Dict:
    """Run every scenario; return the ``BENCH_chase.json`` payload."""
    scenarios = [run_scenario(make(scale)) for make in SCENARIOS]
    payload: Dict = {
        "schema_version": 1,
        "harness": "benchmarks/bench_perf.py",
        "engine": "interned-columnar",
        "scale": scale,
        "python": platform.python_version(),
        # Rates are hardware-relative; record where they were measured
        # so a gate failure on different iron is interpretable.
        "hardware": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "scenarios": scenarios,
        # Decider scenarios always carry their before/after comparison:
        # the baseline replicas double as correctness checks.
        "deciders": [run(make(scale)) for make, run in DECIDERS],
        "headline_decider": HEADLINE_DECIDER,
        # Query-side rows (PR 5): each asserts planner-vs-object-level
        # answer-set (or verdict) equality before reporting a speedup.
        "queries": [run(make(scale)) for make, run in QUERY_SCENARIOS],
        "headline_query": HEADLINE_QUERY,
        # Serial-vs-batched executor rows (each asserts byte-identical
        # results before reporting a speedup).
        "parallel": run_parallel_suite(scale),
        # Runtime-governance overhead (PR 6): governed vs ungoverned
        # headline chase, interleaved best-of-N, ≤5% gate.
        "fault_recovery": run_fault_recovery(scale),
        # Durable-store round trip (PR 7): save, lazy reopen, serve the
        # CQ battery from disk; answers must equal the in-memory run.
        "persistence": run_persistence(persistence_scenario(scale)),
        # Incremental maintenance + query server (PR 8): extend legs vs
        # from-scratch re-chase (identical fact sets, ≥2x gate) and
        # queries/s under concurrent readers + one ingesting writer.
        "serve_incremental": run_serve_incremental(
            serve_incremental_scenario(scale)
        ),
        # Robustness row (PR 9): overload shedding at 2x capacity
        # (accepted answers must stay correct, shed responses must
        # carry Retry-After) + write-ahead ingest-journal overhead vs
        # journal-less durable ingest, ≤10% gate.
        "serve_overload": run_serve_overload(
            serve_overload_scenario(scale)
        ),
    }
    if compare:
        payload["baseline_comparison"] = run_baseline_comparison(
            deep_chain_scenario(scale)
        )
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier for every scenario")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the slow seed-engine baseline run")
    parser.add_argument("--check", metavar="REPORT", default=None,
                        help="regression-gate mode: compare measured "
                             "facts/s against this recorded report and "
                             "exit non-zero on a drop below the floor")
    parser.add_argument("--check-ratio", type=float, default=0.5,
                        help="floor as a fraction of the recorded rate "
                             "(default 0.5)")
    parser.add_argument("--check-mem-ratio", type=float, default=2.0,
                        help="peak-memory ceiling as a multiple of the "
                             "recorded (scale-pro-rated) peak "
                             "(default 2.0)")
    args = parser.parse_args(argv)

    if args.check is not None:
        with open(args.check) as handle:
            baseline = json.load(handle)
        ok, lines = check_against(baseline, args.scale, args.check_ratio,
                                  args.check_mem_ratio)
        for line in lines:
            print(line)
        print("bench gate:", "pass" if ok else "REGRESSION")
        return 0 if ok else 1

    payload = run_suite(scale=args.scale, compare=not args.no_compare)

    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    header = ("scenario", "variant", "facts", "triggers", "wall_s",
              "facts/s", "peak_mem_mb", "working_set_mb")
    print(f"{' | '.join(header)}")
    for row in payload["scenarios"]:
        print(" | ".join(str(row[k]) for k in (
            "name", "variant", "facts_final", "triggers_fired", "wall_s",
            "facts_per_s", "peak_mem_mb", "working_set_mb")))
    comparison = payload.get("baseline_comparison")
    if comparison:
        print(
            f"baseline ({comparison['scenario']}): "
            f"seed {comparison['seed_wall_s']}s vs indexed "
            f"{comparison['indexed_wall_s']}s — "
            f"{comparison['speedup']}x speedup"
        )
    for row in payload["deciders"]:
        print(
            f"decider {row['name']}: baseline {row['baseline_wall_s']}s "
            f"vs {row['wall_s']}s — {row['speedup']}x speedup"
        )
    for row in payload["queries"]:
        print(
            f"query {row['name']}: baseline {row['baseline_wall_s']}s "
            f"vs {row['wall_s']}s — {row['speedup']}x speedup "
            f"({row['rate_per_s']} per-s)"
        )
    for row in payload["parallel"]:
        wall_keys = [k for k in row if k.endswith("_wall_s")]
        walls = ", ".join(f"{k[:-7]} {row[k]}s" for k in wall_keys)
        print(f"parallel {row['name']}: {walls} (byte-identical)")
    fault = payload["fault_recovery"]
    if fault["within_gate"] is None:
        verdict = "gate skipped: wall below noise floor"
    else:
        verdict = "pass" if fault["within_gate"] else "FAIL"
    print(
        f"governance {fault['name']}: ungoverned "
        f"{fault['ungoverned_wall_s']}s vs governed "
        f"{fault['governed_wall_s']}s — {fault['overhead_pct']}% overhead "
        f"(gate {fault['gate_pct']}%, {verdict})"
    )
    stored = payload["persistence"]
    print(
        f"persistence: save {stored['save_s']}s, reopen "
        f"{stored['open_s']}s, {stored['disk_mb']} MB on disk, "
        f"{stored['rate_per_s']} answers/s from the reopened store "
        f"(answers identical)"
    )
    serve = payload["serve_incremental"]
    if serve["within_gate"] is None:
        verdict = "gate skipped: wall below noise floor"
    else:
        verdict = "pass" if serve["within_gate"] else "FAIL"
    print(
        f"serve {serve['name']}: incremental "
        f"{serve['incremental_wall_s']}s vs re-chase "
        f"{serve['full_rechase_wall_s']}s — {serve['speedup']}x "
        f"(gate {serve['gate_speedup']}x, {verdict}); "
        f"{serve['queries_per_s']} queries/s under {serve['readers']} "
        f"readers + 1 writer"
    )
    overload = payload["serve_overload"]
    if overload["wal_within_gate"] is None:
        verdict = "gate skipped: wall below noise floor"
    else:
        verdict = "pass" if overload["wal_within_gate"] else "FAIL"
    print(
        f"serve {overload['name']}: {overload['accepted_per_s']} "
        f"accepted/s, shed rate {overload['shed_rate']} at "
        f"{overload['clients']} clients over "
        f"{overload['max_inflight']} slots; WAL overhead "
        f"{overload['wal_overhead_pct']}% "
        f"(gate {overload['wal_gate_pct']}%, {verdict})"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
