"""Chase performance harness — timed scenarios + ``BENCH_chase.json``.

Measures the indexed join engine (term-level fact indexes + compiled
join plans, PR 1) on four workload shapes:

* **deep_chain** — path composition ``e(X,Y), e(Y,Z) → p(X,Z)`` over a
  long chain: the canonical 2-atom join that is quadratic without
  term-level indexes;
* **wide_relation** — a skewed star join over wide fan-out relations;
* **guarded_ontology** — ``guarded_tower_family`` from
  :mod:`repro.workloads` (multi-atom guarded bodies, fresh nulls per
  level);
* **data_exchange** — an s-t TGD exchange step followed by
  target-side joins, the E10-style workload.

Each scenario reports wall time, facts/sec and triggers/sec.  The
headline scenario (``deep_chain``) is additionally run through a
faithful replica of the *seed* engine — the pre-index recursive
backtracking join retained as
:func:`repro.model.homomorphism.naive_homomorphisms` — and the JSON
records the speedup so future PRs can track the perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py             # full run
    PYTHONPATH=src python benchmarks/bench_perf.py --scale 0.2 # quicker
    PYTHONPATH=src python benchmarks/bench_perf.py --no-compare

writes ``BENCH_chase.json`` next to the repo root (override with
``--output``).  ``benchmarks/test_perf_smoke.py`` runs the same
scenarios at toy sizes inside tier-1 so the harness cannot rot.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chase import ChaseVariant, run_chase
from repro.chase.result import ChaseResult
from repro.chase.triggers import Trigger, apply_trigger, head_satisfied
from repro.model import (
    Atom,
    Constant,
    Database,
    Instance,
    NullFactory,
    Predicate,
    TGD,
    Variable,
    match_atom,
    naive_homomorphisms,
)
from repro.workloads import guarded_tower_family

DEFAULT_OUTPUT = "BENCH_chase.json"

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


# -- scenarios -------------------------------------------------------------


def deep_chain_scenario(scale: float) -> Dict:
    """Path composition over a 2600·scale-edge chain (≥5k facts at
    scale 1.0) — the headline semi-oblivious join scenario."""
    n = max(4, int(2600 * scale))
    e, p = Predicate("e", 2), Predicate("p", 2)
    rules = [TGD([Atom(e, [X, Y]), Atom(e, [Y, Z])], [Atom(p, [X, Z])],
                 label="compose")]
    database = Database(
        Atom(e, [Constant(f"c{i}"), Constant(f"c{i + 1}")])
        for i in range(n)
    )
    return {
        "name": "deep_chain",
        "rules": rules,
        "database": database,
        "variant": ChaseVariant.SEMI_OBLIVIOUS,
        "max_steps": 1_000_000,
    }


def wide_relation_scenario(scale: float) -> Dict:
    """A skewed star join: many ``r`` tuples funnel through few hub
    values into ``s``, then project through an existential."""
    n = max(4, int(1800 * scale))
    hubs = max(2, n // 60)
    r, s, t, u = (Predicate("r", 2), Predicate("s", 2),
                  Predicate("t", 2), Predicate("u", 2))
    rules = [
        TGD([Atom(r, [X, Y]), Atom(s, [Y, Z])], [Atom(t, [X, Z])],
            label="star"),
        TGD([Atom(t, [X, Z])], [Atom(u, [Z, W])], label="witness"),
    ]
    database = Database()
    for i in range(n):
        database.add(Atom(r, [Constant(f"a{i}"), Constant(f"h{i % hubs}")]))
    for j in range(hubs):
        database.add(Atom(s, [Constant(f"h{j}"), Constant(f"b{j}")]))
    return {
        "name": "wide_relation",
        "rules": rules,
        "database": database,
        "variant": ChaseVariant.SEMI_OBLIVIOUS,
        "max_steps": 1_000_000,
    }


def guarded_ontology_scenario(scale: float) -> Dict:
    """``guarded_tower_family``: multi-atom guarded bodies, one fresh
    null per level, seeded with a wide first level."""
    levels = max(2, int(14 * scale))
    width = max(2, int(700 * scale))
    rules = guarded_tower_family(levels)
    r1, m1 = Predicate("r1", 2), Predicate("m1", 1)
    database = Database()
    for i in range(width):
        database.add(Atom(r1, [Constant(f"c{i}"), Constant(f"d{i}")]))
        database.add(Atom(m1, [Constant(f"d{i}")]))
    return {
        "name": "guarded_ontology",
        "rules": rules,
        "database": database,
        "variant": ChaseVariant.RESTRICTED,
        "max_steps": 1_000_000,
    }


def data_exchange_scenario(scale: float) -> Dict:
    """An exchange step: source ``emp``/``dept`` rows are translated to
    the target schema with invented keys, then target TGDs join the
    translated rows back together (the E10 workload shape)."""
    n = max(4, int(1600 * scale))
    depts = max(2, n // 40)
    emp = Predicate("emp", 2)           # source: (employee, dept name)
    dept = Predicate("dept", 1)         # source: dept names
    works = Predicate("works", 2)       # target: (employee, dept key)
    dkey = Predicate("dkey", 2)         # target: (dept name, dept key)
    office = Predicate("office", 2)     # target: (dept key, office)
    located = Predicate("located", 2)   # target: (employee, office)
    D, K, O = Variable("D"), Variable("K"), Variable("O")
    rules = [
        TGD([Atom(dept, [D])], [Atom(dkey, [D, K])], label="st_dept"),
        TGD([Atom(emp, [X, D]), Atom(dkey, [D, K])],
            [Atom(works, [X, K])], label="st_emp"),
        TGD([Atom(dkey, [D, K])], [Atom(office, [K, O])], label="t_office"),
        TGD([Atom(works, [X, K]), Atom(office, [K, O])],
            [Atom(located, [X, O])], label="t_located"),
    ]
    database = Database()
    for j in range(depts):
        database.add(Atom(dept, [Constant(f"d{j}")]))
    for i in range(n):
        database.add(Atom(emp, [Constant(f"e{i}"), Constant(f"d{i % depts}")]))
    return {
        "name": "data_exchange",
        "rules": rules,
        "database": database,
        "variant": ChaseVariant.SEMI_OBLIVIOUS,
        "max_steps": 1_000_000,
    }


SCENARIOS = (
    deep_chain_scenario,
    wide_relation_scenario,
    guarded_ontology_scenario,
    data_exchange_scenario,
)

HEADLINE = "deep_chain"


# -- the seed engine, replicated ------------------------------------------
#
# A faithful copy of the seed's semi-naive round loop, driven by the
# retained pre-index matcher (`naive_homomorphisms` + per-call
# `match_atom` dict copies).  This is the baseline the speedup figure
# in BENCH_chase.json is measured against.


def _seed_incremental_triggers(rules, instance, new_facts):
    new_by_predicate: Dict[Predicate, List[Atom]] = {}
    for fact in new_facts:
        new_by_predicate.setdefault(fact.predicate, []).append(fact)
    for rule_index, rule in enumerate(rules):
        for pivot, pivot_atom in enumerate(rule.body):
            candidates = new_by_predicate.get(pivot_atom.predicate)
            if not candidates:
                continue
            rest = [a for i, a in enumerate(rule.body) if i != pivot]
            for fact in candidates:
                partial = match_atom(pivot_atom, fact, {})
                if partial is None:
                    continue
                for assignment in naive_homomorphisms(
                    rest, instance, partial
                ):
                    yield Trigger(rule, rule_index, assignment)


def seed_chase(
    database: Instance,
    rules: Sequence[TGD],
    variant: str,
    max_steps: int,
) -> Tuple[Instance, int, bool]:
    """Run the seed engine; returns ``(instance, steps, terminated)``."""
    instance = Instance(database)
    factory = NullFactory()
    fired = set()
    steps = 0
    frontier: List[Atom] = list(instance)
    while True:
        round_triggers = list(
            _seed_incremental_triggers(rules, instance, frontier)
        )
        frontier = []
        fired_this_round = 0
        for trigger in round_triggers:
            key = trigger.key(variant)
            if key in fired:
                continue
            if variant == ChaseVariant.RESTRICTED and head_satisfied(
                trigger, instance
            ):
                fired.add(key)
                continue
            fired.add(key)
            new_facts = apply_trigger(trigger, instance, factory)
            frontier.extend(new_facts)
            steps += 1
            fired_this_round += 1
            if steps >= max_steps:
                return instance, steps, False
        if fired_this_round == 0:
            return instance, steps, True


# -- measurement -----------------------------------------------------------


def run_scenario(spec: Dict) -> Dict:
    """Run one scenario through the indexed engine and report rates."""
    start = time.perf_counter()
    result: ChaseResult = run_chase(
        spec["database"], spec["rules"], spec["variant"], spec["max_steps"]
    )
    wall = time.perf_counter() - start
    facts_final = len(result.instance)
    facts_created = facts_final - len(spec["database"])
    triggers = result.step_count
    return {
        "name": spec["name"],
        "variant": spec["variant"],
        "database_facts": len(spec["database"]),
        "facts_final": facts_final,
        "facts_created": facts_created,
        "triggers_fired": triggers,
        "terminated": result.terminated,
        "wall_s": round(wall, 6),
        "facts_per_s": round(facts_created / wall, 1) if wall > 0 else None,
        "triggers_per_s": round(triggers / wall, 1) if wall > 0 else None,
    }


def run_baseline_comparison(spec: Dict) -> Dict:
    """Indexed engine vs the seed-engine replica on one scenario.

    Both runs must produce the same number of facts and fire the same
    number of triggers — the replica is a correctness check as well as
    a baseline.
    """
    indexed_start = time.perf_counter()
    indexed = run_chase(
        spec["database"], spec["rules"], spec["variant"], spec["max_steps"]
    )
    indexed_wall = time.perf_counter() - indexed_start

    seed_start = time.perf_counter()
    seed_instance, seed_steps, seed_terminated = seed_chase(
        spec["database"], spec["rules"], spec["variant"], spec["max_steps"]
    )
    seed_wall = time.perf_counter() - seed_start

    if len(indexed.instance) != len(seed_instance):
        raise AssertionError(
            f"engine divergence on {spec['name']}: indexed produced "
            f"{len(indexed.instance)} facts, seed {len(seed_instance)}"
        )
    if indexed.step_count != seed_steps:
        raise AssertionError(
            f"engine divergence on {spec['name']}: indexed fired "
            f"{indexed.step_count} triggers, seed {seed_steps}"
        )
    return {
        "scenario": spec["name"],
        "variant": spec["variant"],
        "facts_final": len(indexed.instance),
        "triggers_fired": indexed.step_count,
        "indexed_wall_s": round(indexed_wall, 6),
        "seed_wall_s": round(seed_wall, 6),
        "speedup": round(seed_wall / indexed_wall, 2)
        if indexed_wall > 0 else None,
    }


def run_suite(scale: float = 1.0, compare: bool = True) -> Dict:
    """Run every scenario; return the ``BENCH_chase.json`` payload."""
    scenarios = [run_scenario(make(scale)) for make in SCENARIOS]
    payload: Dict = {
        "schema_version": 1,
        "harness": "benchmarks/bench_perf.py",
        "engine": "indexed-joinplan",
        "scale": scale,
        "python": platform.python_version(),
        "scenarios": scenarios,
    }
    if compare:
        payload["baseline_comparison"] = run_baseline_comparison(
            deep_chain_scenario(scale)
        )
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier for every scenario")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the slow seed-engine baseline run")
    args = parser.parse_args(argv)

    payload = run_suite(scale=args.scale, compare=not args.no_compare)

    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    header = ("scenario", "variant", "facts", "triggers", "wall_s",
              "facts/s")
    print(f"{' | '.join(header)}")
    for row in payload["scenarios"]:
        print(" | ".join(str(row[k]) for k in (
            "name", "variant", "facts_final", "triggers_fired", "wall_s",
            "facts_per_s")))
    comparison = payload.get("baseline_comparison")
    if comparison:
        print(
            f"baseline ({comparison['scenario']}): "
            f"seed {comparison['seed_wall_s']}s vs indexed "
            f"{comparison['indexed_wall_s']}s — "
            f"{comparison['speedup']}x speedup"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
