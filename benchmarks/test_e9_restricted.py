"""E9 — §4 future work: restricted chase for single-head linear TGDs.

The reconstruction's verdicts against budgeted restricted-chase runs,
and the polynomial-time scaling the paper claims for the syntactic
test.
"""

import itertools
import time

from benchmarks.conftest import print_table
from repro.chase import ChaseVariant, run_chase
from repro.model import Atom, Constant, Database, Schema
from repro.parser import parse_program
from repro.termination import decide_restricted_single_head

CASES = [
    ("p(X, Y) -> exists Z . p(X, Z)", True),
    ("p(X, Y) -> exists Z . p(Y, Z)", False),
    ("a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a(Y)", False),
    ("a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a2(Y)", True),
    (
        "p1(X) -> exists Y . p2(X, Y)\np2(X, Y) -> exists Z . p3(Y, Z)",
        True,
    ),
]


def _distinct_database(rules) -> Database:
    database = Database()
    counter = itertools.count(1)
    for pred in Schema.from_rules(rules):
        database.add(
            Atom(pred, [Constant(f"c{next(counter)}")
                        for _ in range(pred.arity)])
        )
    return database


def test_e9_verdicts_vs_chase(benchmark):
    def run():
        rows = []
        for text, expected in CASES:
            rules = parse_program(text)
            verdict = decide_restricted_single_head(rules)
            result = run_chase(
                _distinct_database(rules), rules,
                ChaseVariant.RESTRICTED, max_steps=400,
            )
            rows.append(
                (text.split("\n")[0][:38], verdict.terminating,
                 result.terminated)
            )
            assert verdict.terminating == expected
        return rows

    rows = benchmark(run)
    print_table(
        "E9: §4 decider vs budgeted restricted chase",
        ["program (first rule)", "decider", "chase fixpoint"],
        rows,
    )
    for _, decided, observed in rows:
        assert decided == observed


def test_e9_polynomial_scaling(benchmark):
    """The rule-graph test stays polynomial in the rule count."""

    def chain(n):
        lines = []
        for i in range(n):
            lines.append(f"q{i}(X) -> exists Y . q{i + 1}(X, Y)"
                         if i % 2 == 0 else f"q{i}(X, Y) -> q{i + 1}(Y)")
        return parse_program("\n".join(lines))

    def run():
        rows = []
        for n in (8, 16, 32, 64):
            rules = chain(n)
            start = time.perf_counter()
            verdict = decide_restricted_single_head(rules)
            elapsed = time.perf_counter() - start
            assert verdict.terminating
            rows.append((n, f"{elapsed * 1000:.2f} ms"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E9: decision time vs #rules",
                ["rules", "time"], rows)
    assert len(rows) == 4
