"""E11 (ablation) — how much precision do the classic sufficient
conditions give up against the paper's exact deciders?

The paper's opening question: "with so much effort spent on
identifying sufficient conditions for the termination of the chase,
[does] a sufficient condition that is also necessary exist?"  This
bench quantifies the gap on random guarded programs: each condition's
acceptance rate vs the exact Theorem 2/4 verdict, with the hierarchy
RA ⊆ WA ⊆ JA ⊆ MFA ⊆ CT_so checked along the way.
"""

from benchmarks.conftest import print_table
from repro.chase import ChaseVariant
from repro.graphs import (
    is_jointly_acyclic,
    is_richly_acyclic,
    is_weakly_acyclic,
)
from repro.termination import decide_termination, is_mfa
from repro.workloads import random_guarded, random_linear, random_simple_linear

SAMPLES = (
    [random_simple_linear(3 + s % 3, seed=s) for s in range(20)]
    + [random_linear(3 + s % 3, repeat_prob=0.5, seed=s) for s in range(20)]
    + [random_guarded(2 + s % 3, seed=s) for s in range(12)]
)


def test_e11_condition_precision(benchmark):
    def run():
        counts = {"RA": 0, "WA": 0, "JA": 0, "MFA": 0, "exact(so)": 0}
        hierarchy_violations = 0
        soundness_violations = 0
        for rules in SAMPLES:
            ra = is_richly_acyclic(rules)
            wa = is_weakly_acyclic(rules)
            ja = is_jointly_acyclic(rules)
            mfa = is_mfa(rules)
            exact = decide_termination(
                rules, variant=ChaseVariant.SEMI_OBLIVIOUS
            ).terminating
            counts["RA"] += ra
            counts["WA"] += wa
            counts["JA"] += ja
            counts["MFA"] += mfa
            counts["exact(so)"] += exact
            chain = [ra, wa, ja, mfa, exact]
            for weaker, stronger in zip(chain, chain[1:]):
                if weaker and not stronger:
                    hierarchy_violations += 1
            if mfa and not exact:
                soundness_violations += 1
        return counts, hierarchy_violations, soundness_violations

    counts, hierarchy_violations, soundness_violations = benchmark(run)
    total = len(SAMPLES)
    print_table(
        "E11: acceptance rates of termination conditions "
        f"({total} random programs, semi-oblivious)",
        ["condition", "accepts", "share"],
        [
            (name, count, f"{count / total:.0%}")
            for name, count in counts.items()
        ],
    )
    print_table(
        "E11: hierarchy RA ⊆ WA ⊆ JA ⊆ MFA ⊆ CT_so",
        ["check", "violations"],
        [
            ("chain inclusions", hierarchy_violations),
            ("MFA soundness", soundness_violations),
        ],
    )
    assert hierarchy_violations == 0
    assert soundness_violations == 0
    # The exact decider must accept at least as much as every
    # sufficient condition — and strictly more overall, which is the
    # paper's raison d'être.
    assert counts["exact(so)"] >= counts["MFA"] >= counts["JA"] >= counts["WA"]
    assert counts["exact(so)"] > counts["WA"]


def test_e12_instance_level_refinement(benchmark):
    """Per-database termination (guarded) refines the all-instance
    question: Example 1 diverges in general yet terminates on every
    person-free database."""
    from repro.parser import parse_database, parse_program
    from repro.termination import decide_termination_on

    rules = parse_program(
        "person(X) -> exists Y . hasFather(X, Y), person(Y)"
    )
    databases = [
        ("person(bob)", False),
        ("person(a)\nperson(b)", False),
        ("hasFather(a, b)", True),
        ("", True),
    ]

    def run():
        rows = []
        for db_text, expected in databases:
            verdict = decide_termination_on(
                rules, parse_database(db_text)
            )
            rows.append(
                (db_text.replace("\n", ", ") or "(empty)",
                 verdict.terminating)
            )
            assert verdict.terminating == expected
        return rows

    rows = benchmark(run)
    print_table(
        "E12: Example 1, per-database verdicts",
        ["database", "terminates"],
        rows,
    )
    all_instance = decide_termination(
        rules, variant=ChaseVariant.SEMI_OBLIVIOUS
    )
    assert not all_instance.terminating
