"""E2 — Theorem 2: plain acyclicity is incomplete for linear TGDs;
critical acyclicity is exact.

The paper's in-text claim: "a dangerous cycle does not necessarily
correspond to an infinite chase derivation" once body variables repeat.
The diagonal family exhibits the separation at every arity; random
linear programs quantify how often WA is wrong on L.
"""

from benchmarks.conftest import print_table
from repro.chase import ChaseVariant
from repro.graphs import is_weakly_acyclic
from repro.termination import (
    critical_chase_terminates,
    decide_linear,
)
from repro.workloads import diagonal_family, random_linear

RANDOM_L = [
    random_linear(
        num_rules=2 + (seed % 4),
        num_predicates=2 + (seed % 3),
        max_arity=2 + (seed % 2),
        repeat_prob=0.6,
        seed=seed,
    )
    for seed in range(30)
]


def test_e2_diagonal_separation(benchmark):
    """WA rejects the diagonal family; the critical decider accepts it
    and the concrete chase confirms termination."""

    def run():
        rows = []
        for arity in (2, 3, 4, 5):
            rules = diagonal_family(arity)
            wa = is_weakly_acyclic(rules)
            critical = decide_linear(
                rules, ChaseVariant.SEMI_OBLIVIOUS
            ).terminating
            oracle = critical_chase_terminates(
                rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=500
            )
            rows.append((arity, wa, critical, oracle))
        return rows

    rows = benchmark(run)
    print_table(
        "E2: diagonal family p(X..X) -> ∃Z p(Z, X..X)",
        ["arity", "weakly_acyclic", "critical_verdict", "oracle"],
        rows,
    )
    for _, wa, critical, oracle in rows:
        assert not wa          # syntactically "dangerous"
        assert critical        # semantically terminating
        assert oracle is True  # confirmed by the concrete chase


def test_e2_random_linear_agreement(benchmark):
    """On random linear programs: the critical deciders never
    contradict the oracle, while WA/RA under-approximate."""

    def run():
        exact = 0
        wa_false_negatives = 0
        for rules in RANDOM_L:
            critical = decide_linear(
                rules, ChaseVariant.SEMI_OBLIVIOUS
            ).terminating
            oracle = critical_chase_terminates(
                rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=500
            )
            exact += (oracle is True) == critical
            if critical and not is_weakly_acyclic(rules):
                wa_false_negatives += 1
        return exact, wa_false_negatives

    exact, wa_false_negatives = benchmark(run)
    print_table(
        "E2: random linear programs",
        ["check", "result"],
        [
            ("critical decider = oracle", f"{exact}/{len(RANDOM_L)}"),
            ("terminating but not WA (WA too weak)", wa_false_negatives),
        ],
    )
    assert exact == len(RANDOM_L)
