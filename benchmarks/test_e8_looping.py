"""E8 — the looping operator: entailment ⟶ co-termination, end to end.

For a batch of entailment instances (half entailed, half not) the
reduction must flip exactly with entailment, deciding each transformed
program with the Theorem 4 procedure — the paper's lower-bound pipeline
run forwards.
"""

from benchmarks.conftest import print_table
from repro.chase import ChaseVariant
from repro.entailment import entails_atom, looping_operator
from repro.model import Predicate
from repro.parser import parse_atom, parse_database, parse_program
from repro.termination import decide_termination

BASE = parse_program(
    """
    admin(X) -> canWrite(X)
    canWrite(X), audited(X) -> alert()
    """
)
GOAL = Predicate("alert", 0)

INSTANCES = [
    ("admin(root)\naudited(root)", True),
    ("admin(root)\naudited(visitor)", False),
    ("admin(a)\nadmin(b)\naudited(b)", True),
    ("audited(a)\naudited(b)", False),
    ("admin(a)\nadmin(b)", False),
    ("admin(x)\naudited(x)\nadmin(y)", True),
]


def test_e8_reduction_correctness(benchmark):
    def run():
        rows = []
        for db_text, expected in INSTANCES:
            db = parse_database(db_text)
            entailed = entails_atom(BASE, db, parse_atom("alert()"))
            program = looping_operator(BASE, db, GOAL)
            verdict = decide_termination(
                program.rules, variant=ChaseVariant.SEMI_OBLIVIOUS
            )
            rows.append(
                (db_text.replace("\n", ", "), entailed,
                 not verdict.terminating, len(program))
            )
            assert entailed == expected
        return rows

    rows = benchmark(run)
    print_table(
        "E8: looping operator  (entailed ⇔ non-terminating)",
        ["database", "entailed", "loop(Σ,D,p) diverges", "rules"],
        rows,
    )
    for _, entailed, diverges, _ in rows:
        assert entailed == diverges


def test_e8_transformation_size(benchmark):
    """The operator's output grows linearly with |D| + |Σ|."""

    def run():
        rows = []
        for facts in (1, 2, 4, 8):
            db_text = "\n".join(f"admin(u{i})" for i in range(facts))
            db = parse_database(db_text)
            program = looping_operator(BASE, db, GOAL,
                                       check_termination=False)
            rows.append((facts, len(program)))
        return rows

    rows = benchmark(run)
    print_table("E8: transformation size", ["|D| facts", "rules"], rows)
    for facts, size in rows:
        # start + layout + facts + |Σ| + restart
        assert size == 3 + facts + len(BASE)
