"""E3 — Theorem 3: complexity scaling of the (S)L deciders.

* SL is NL-complete: the decision is graph reachability, so runtime
  should grow (low-order) polynomially in the number of rules.
* L is PSPACE-complete in general but NL for *bounded arity*: the
  critical decider's state space grows with the arity (equality
  patterns over positions), not with the rule count.

The bench prints both series; the assertions pin the shape (the arity
series grows strictly and faster than the rule-count series).
"""

import time

from benchmarks.conftest import print_table
from repro.chase import ChaseVariant
from repro.termination import TypeAnalysis, decide_linear, decide_termination
from repro.workloads import chain_family, shifting_family


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_e3_sl_scaling_in_rule_count(benchmark):
    """Theorem 3(1): SL decisions scale as graph reachability."""
    lengths = [5, 10, 20, 40, 80]

    def run():
        rows = []
        for length in lengths:
            rules = chain_family(length)
            elapsed = _time(
                lambda r=rules: decide_termination(
                    r, variant=ChaseVariant.SEMI_OBLIVIOUS
                )
            )
            rows.append((length, f"{elapsed * 1000:.2f} ms"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E3: SL decider vs #rules (chain family)",
                ["rules", "decision time"], rows)
    assert len(rows) == len(lengths)


def test_e3_linear_arity_blowup(benchmark):
    """Theorem 3(2): the unbounded-arity linear decision explores a
    state space that grows with the arity — the PSPACE regime."""
    arities = [2, 3, 4, 5]

    def run():
        rows = []
        for arity in arities:
            rules = shifting_family(arity)
            analysis = TypeAnalysis(rules)
            analysis.saturate()
            types = analysis.type_count()
            elapsed = _time(
                lambda r=rules: decide_linear(
                    r, ChaseVariant.SEMI_OBLIVIOUS
                )
            )
            rows.append((arity, types, f"{elapsed * 1000:.2f} ms"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E3: linear decider vs arity (shifting family)",
                ["arity", "abstract types", "decision time"], rows)
    types_series = [row[1] for row in rows]
    assert types_series == sorted(types_series)
    assert types_series[-1] > types_series[0]


def test_e3_bounded_arity_stays_flat(benchmark):
    """Bounded arity (Theorem 3(2), NL part): growing the *rule count*
    at fixed arity keeps the per-rule type space small."""
    lengths = [2, 4, 8, 16]

    def run():
        rows = []
        for length in lengths:
            rules = chain_family(length, arity=2)
            analysis = TypeAnalysis(rules)
            analysis.saturate()
            rows.append((length, analysis.type_count()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E3: bounded arity — types vs #rules",
                ["rules", "abstract types"], rows)
    lengths_list = [row[0] for row in rows]
    types_list = [row[1] for row in rows]
    # Linear, not exponential, growth: a few types per chain stage.
    for length, types in zip(lengths_list, types_list):
        assert types <= 4 * length + 4
